// Little-endian wire primitives for the snapshot format.
//
// Snapshots must load safely from untrusted bytes: a truncated download, a
// bit-flipped disk block or a file of the wrong kind has to surface as
// ron::Error, never as UB or an unbounded allocation. WireWriter builds a
// payload in memory; WireReader is a bounds-checked cursor over loaded bytes
// — every read validates the remaining length first, and every count that
// sizes an allocation is validated against the bytes that could possibly
// back it (see read_count).
//
// All integers are fixed-width little-endian; doubles travel as their IEEE
// bit pattern (round trips are bit-identical, which the serving layer's
// "save → load → estimate is bit-identical" invariant relies on).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace ron {

/// Writes `bytes` to `out` (binary), throwing ron::Error naming `what` on a
/// short write. This and read_stream_bytes are the ONLY place snapshot code
/// touches raw char buffers: tools/ron_lint.py forbids memcpy and
/// reinterpret_cast in src/oracle/ outside wire.{h,cpp}, so every byte that
/// crosses a stream boundary goes through these bounds-checked helpers.
void write_stream_bytes(std::ostream& out, std::span<const std::uint8_t> bytes,
                        const char* what);

/// Reads exactly `bytes.size()` bytes from `in` into `bytes`, throwing
/// ron::Error naming `what` on a short read.
void read_stream_bytes(std::istream& in, std::span<std::uint8_t> bytes,
                       const char* what);

/// Best-effort prefix read for sniffing: fills as much of `bytes` as the
/// stream yields and returns the byte count. A short read at EOF is NOT an
/// error (callers that probe a possibly-foreign file decide what a short
/// prefix means), but a stream-level failure (badbit: disk error, throwing
/// streambuf) throws ron::Error — a failing device must never look like a
/// short foreign file.
std::size_t read_stream_prefix(std::istream& in, std::span<std::uint8_t> bytes);

/// FNV-1a 64-bit checksum (the snapshot header's corruption detector; this
/// guards against accidental damage, not adversaries). The _continue form
/// chains over multiple spans: fnv1a64(a+b) ==
/// fnv1a64_continue(fnv1a64(a), b) — the snapshot layer uses it to fold the
/// header's version/kind fields into the v2 checksum domain without
/// materializing a concatenated buffer.
/// Snapshot container framing, shared by the in-memory path (snapshot.cpp)
/// and the streaming classes below: magic[8] + u32 version + u32 kind +
/// u64 payload length + u64 checksum, then the payload.
inline constexpr std::uint8_t kSnapshotMagic[8] = {'R', 'O', 'N', 'S',
                                                   'N', 'A', 'P', '\n'};
inline constexpr std::size_t kSnapshotHeaderBytes = 8 + 4 + 4 + 8 + 8;

inline constexpr std::uint64_t kFnv1a64Basis = 0xcbf29ce484222325ULL;
std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes);
std::uint64_t fnv1a64_continue(std::uint64_t state,
                               std::span<const std::uint8_t> bytes);

class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void f64(double v) { put_le(std::bit_cast<std::uint64_t>(v)); }

  /// Length-prefixed (u64) byte string.
  void str(const std::string& s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

/// Chunked streaming counterpart of WireWriter for large sections (the
/// million-node rings/directory snapshots): payload bytes are folded into a
/// running FNV-1a state and flushed to disk kStreamChunkBytes at a time, so
/// peak memory is one chunk instead of the whole payload. The snapshot
/// header is written up front with placeholder length/checksum fields;
/// finish() seeks back and patches them. The primitive API mirrors
/// WireWriter, so payload helpers can be written once as templates.
inline constexpr std::size_t kStreamChunkBytes = 1 << 20;

class WireStreamWriter {
 public:
  /// Opens `path`, writes the magic/version/kind header with placeholder
  /// length and checksum. `checksum_seed` is the initial FNV state (the
  /// v2 domain folds the version/kind prefix in; v1 starts at the basis).
  WireStreamWriter(const std::string& path, std::uint32_t version,
                   std::uint32_t kind, std::uint64_t checksum_seed);
  ~WireStreamWriter();
  WireStreamWriter(const WireStreamWriter&) = delete;
  WireStreamWriter& operator=(const WireStreamWriter&) = delete;

  void u8(std::uint8_t v) {
    chunk_.push_back(v);
    if (chunk_.size() >= kStreamChunkBytes) flush_chunk();
  }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void f64(double v) { put_le(std::bit_cast<std::uint64_t>(v)); }

  /// Length-prefixed (u64) byte string.
  void str(const std::string& s) {
    u64(s.size());
    for (char c : s) u8(static_cast<std::uint8_t>(c));
  }

  /// Payload bytes emitted so far.
  std::uint64_t size() const { return total_ + chunk_.size(); }

  /// Flushes the tail chunk, patches the header's payload length and
  /// checksum, and closes the file. Must be called exactly once for a
  /// valid snapshot. Destroying an unfinished writer (the exception path)
  /// leaves the placeholder header in place — an unloadable file, which is
  /// the safe failure mode.
  void finish();

 private:
  void flush_chunk();

  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::string path_;
  std::ofstream out_;
  std::vector<std::uint8_t> chunk_;
  std::uint64_t total_ = 0;  // payload bytes already flushed
  std::uint64_t sum_;        // running checksum over flushed bytes
  bool finished_ = false;
};

class WireReader {
 public:
  /// A non-owning cursor; `bytes` must outlive the reader.
  explicit WireReader(std::span<const std::uint8_t> bytes) : data_(bytes) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

  std::uint8_t u8() {
    need(1, "u8");
    return data_[pos_++];
  }
  std::uint32_t u32() { return get_le<std::uint32_t>("u32"); }
  std::uint64_t u64() { return get_le<std::uint64_t>("u64"); }
  double f64() { return std::bit_cast<double>(get_le<std::uint64_t>("f64")); }

  std::string str() {
    const std::uint64_t len = u64();
    need(len, "str body");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                  static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }

  /// An element count that will size an allocation: rejected unless
  /// count * min_elem_bytes still fits in the unread payload, so a corrupt
  /// header cannot request a multi-gigabyte reserve.
  std::uint64_t read_count(std::size_t min_elem_bytes, const char* what) {
    const std::uint64_t count = u64();
    RON_CHECK(min_elem_bytes == 0 ||
                  count <= remaining() / min_elem_bytes,
              "snapshot: implausible " << what << " count " << count
                                       << " (" << remaining()
                                       << " bytes left)");
    return count;
  }

  /// Loads must consume the payload exactly; trailing garbage is corruption.
  void expect_done() const {
    RON_CHECK(done(), "snapshot: " << remaining() << " trailing bytes");
  }

 private:
  void need(std::uint64_t n, const char* what) const {
    RON_CHECK(n <= remaining(), "snapshot truncated reading " << what << " ("
                                    << n << " bytes wanted, " << remaining()
                                    << " left)");
  }

  template <typename T>
  T get_le(const char* what) {
    need(sizeof(T), what);
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Bounded-memory streaming counterpart of WireReader: serves the same
/// primitive API from a sliding window over the file, so loading a
/// million-node section holds one chunk plus the data structure being
/// built, never the whole payload. The running checksum is folded over
/// bytes as they are buffered; expect_done() — which every loader must
/// reach — verifies full consumption AND the checksum, so a corrupt tail
/// still surfaces as ron::Error before the loaded object is returned.
/// The construction-time validation mirrors read_snapshot: magic, known
/// version, plausible kind, and exact file length against the header's
/// payload promise.
class WireStreamReader {
 public:
  struct Header {
    std::uint32_t version = 0;
    std::uint32_t kind = 0;
    std::uint64_t payload_bytes = 0;
    std::uint64_t checksum = 0;  // the header's claimed checksum
  };

  explicit WireStreamReader(const std::string& path);
  WireStreamReader(const WireStreamReader&) = delete;
  WireStreamReader& operator=(const WireStreamReader&) = delete;

  const Header& header() const { return header_; }

  /// Re-seeds the running checksum (must be called before any payload read).
  /// The construction default is the FNV basis (the v1 domain); v2 loaders
  /// seed with the version/kind prefix hash after inspecting header().
  void seed_checksum(std::uint64_t seed);

  /// Consumes the rest of the payload unparsed (the inspect path: verifies
  /// length and checksum without building anything).
  void drain();

  std::uint64_t remaining() const { return header_.payload_bytes - consumed_; }
  bool done() const { return consumed_ == header_.payload_bytes; }

  std::uint8_t u8() {
    need(1, "u8");
    ++consumed_;
    return buf_[pos_++];
  }
  std::uint32_t u32() { return get_le<std::uint32_t>("u32"); }
  std::uint64_t u64() { return get_le<std::uint64_t>("u64"); }
  double f64() { return std::bit_cast<double>(get_le<std::uint64_t>("f64")); }

  std::string str();

  /// An element count that will size an allocation (see WireReader).
  std::uint64_t read_count(std::size_t min_elem_bytes, const char* what) {
    const std::uint64_t count = u64();
    RON_CHECK(min_elem_bytes == 0 || count <= remaining() / min_elem_bytes,
              "snapshot: implausible " << what << " count " << count << " ("
                                       << remaining() << " bytes left)");
    return count;
  }

  /// Verifies the payload was consumed exactly and the checksum matches.
  void expect_done();

 private:
  /// Ensures >= n contiguous unread bytes are buffered (n <= chunk size).
  void need(std::size_t n, const char* what);

  template <typename T>
  T get_le(const char* what) {
    need(sizeof(T), what);
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(buf_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    consumed_ += sizeof(T);
    return v;
  }

  std::string path_;
  std::ifstream in_;
  Header header_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;        // next unread byte in buf_
  std::size_t avail_ = 0;      // valid bytes in buf_
  std::uint64_t fetched_ = 0;  // payload bytes pulled off the stream
  std::uint64_t consumed_ = 0; // payload bytes handed to the parser
  std::uint64_t sum_;          // running checksum over fetched bytes
};

}  // namespace ron
