#include "oracle/engine.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace ron {
namespace {

// Batch-local histogram scratch: a shard loop records every sample here
// with plain arithmetic (stack-hot cache lines, no atomics) and folds the
// whole batch into the shared shard once via Histogram::merge_single_owner.
// min/max start at the infinities so the NaN rule matches record(): a NaN
// sample lands in the underflow bucket but never becomes min/max.
struct LocalHistogram {
  HistogramSnapshot h{.count = 0,
                      .sum = 0.0,
                      .min = std::numeric_limits<double>::infinity(),
                      .max = -std::numeric_limits<double>::infinity(),
                      .buckets = {}};

  void record(double v) {
    ++h.buckets[Histogram::bucket_index(v)];
    ++h.count;
    h.sum += v;
    if (v < h.min) h.min = v;
    if (v > h.max) h.max = v;
  }
};

}  // namespace

std::vector<QueryPair> random_query_pairs(std::size_t count, std::size_t n,
                                          Rng& rng) {
  std::vector<QueryPair> pairs(count);
  for (auto& p : pairs) {
    p = {static_cast<NodeId>(rng.index(n)), static_cast<NodeId>(rng.index(n))};
  }
  return pairs;
}

OracleEngine::OracleEngine(OracleOptions opts)
    : clock_(opts.clock != nullptr ? opts.clock : &Clock::real()),
      clock_is_real_(clock_ == &Clock::real()),
      trace_sink_(opts.trace_sink) {
  if (opts.num_threads != 0) {
    RON_CHECK(opts.num_threads <= 256,
              "OracleEngine: " << opts.num_threads << " threads");
    workers_ = opts.num_threads;
  } else {
    // Auto mode: one per hardware thread, clamped (not rejected) on very
    // large hosts.
    workers_ = std::min(256u, std::max(1u,
                                       std::thread::hardware_concurrency()));
  }
  // Per-worker cache shards; at least one entry each when caching is on.
  cache_capacity_per_shard_ =
      opts.cache_capacity == 0
          ? 0
          : std::max<std::size_t>(1, opts.cache_capacity / workers_);
  estimate_cache_.reserve(workers_);
  locate_cache_.reserve(workers_);
  for (unsigned w = 0; w < workers_; ++w) {
    estimate_cache_.emplace_back(cache_capacity_per_shard_);
    locate_cache_.emplace_back(cache_capacity_per_shard_);
  }
  locate_cache_epoch_.assign(workers_, 0);
  shard_index_.resize(workers_);
  init_metrics();
  start_pool();
}

void OracleEngine::init_metrics() {
  // workers_+1 shards: one per worker plus the shared dispatcher/
  // maintenance shard (index workers_) — see the member comment.
  metrics_ = std::make_unique<MetricsRegistry>(workers_ + 1);
  MetricsRegistry& r = *metrics_;
  m_estimate_latency_ = &r.histogram("ron_engine_estimate_latency_seconds");
  m_locate_latency_ = &r.histogram("ron_engine_locate_latency_seconds");
  m_estimate_batch_seconds_ =
      &r.histogram("ron_engine_estimate_batch_seconds");
  m_locate_batch_seconds_ = &r.histogram("ron_engine_locate_batch_seconds");
  m_estimate_cache_hits_ = &r.counter("ron_engine_estimate_cache_hits_total");
  m_estimate_cache_misses_ =
      &r.counter("ron_engine_estimate_cache_misses_total");
  m_locate_cache_hits_ = &r.counter("ron_engine_locate_cache_hits_total");
  m_locate_cache_misses_ = &r.counter("ron_engine_locate_cache_misses_total");
  m_epoch_swaps_ = &r.counter("ron_engine_epoch_swaps_total");
  m_epoch_swap_seconds_ = &r.histogram("ron_engine_epoch_swap_seconds");
  m_epoch_mu_hold_seconds_ =
      &r.histogram("ron_engine_epoch_mu_hold_seconds");
  m_mu_hold_seconds_ = &r.histogram("ron_engine_mu_hold_seconds");
  m_locate_hops_ = &r.histogram("ron_engine_locate_hops");
  m_locate_route_stretch_ = &r.histogram("ron_engine_locate_route_stretch");
  m_hop_bound_violations_ =
      &r.counter("ron_engine_locate_hop_bound_violations_total");
  m_locate_not_found_ = &r.counter("ron_engine_locate_not_found_total");
  m_cache_invalidations_ =
      &r.counter("ron_engine_locate_cache_invalidations_total");
  m_hop_bound_ = &r.gauge("ron_engine_locate_hop_bound");
}

OracleEngine::OracleEngine(DistanceLabeling labeling, OracleOptions opts)
    : OracleEngine(opts) {
  labeling_ = std::move(labeling);
}

OracleEngine::OracleEngine(const LocationService& svc, OracleOptions opts,
                           LocateOptions locate_opts)
    : OracleEngine(opts) {
  attach_location(svc, locate_opts);
}

OracleEngine::OracleEngine(std::shared_ptr<const LocationEpoch> epoch,
                           OracleOptions opts, LocateOptions locate_opts)
    : OracleEngine(opts) {
  locate_opts_ = locate_opts;
  set_epoch(std::move(epoch), /*require_new_id=*/false);
}

OracleEngine::~OracleEngine() {
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : pool_) t.join();
}

std::size_t OracleEngine::n() const {
  if (labeling_.has_value()) return labeling_->n();
  const auto epoch = current_epoch();
  RON_CHECK(epoch != nullptr, "OracleEngine: no snapshot state");
  return epoch->service->n();
}

const DistanceLabeling& OracleEngine::labeling() const {
  RON_CHECK(labeling_.has_value(), "OracleEngine: no labeling attached");
  return *labeling_;
}

std::shared_ptr<const LocationEpoch> OracleEngine::current_epoch() const {
  // Hold time is clocked from acquisition to just before release (the
  // Stopwatch lives inside the critical section); recording happens after
  // the unlock so the histogram update is never under the lock. The
  // dispatcher/maintenance shard is shared — its cells are atomics.
  std::uint64_t hold_ns = 0;
  std::shared_ptr<const LocationEpoch> epoch;
  {
    MutexLock lk(epoch_mu_);
    if constexpr (kTelemetryEnabled) {
      const Stopwatch hold(*clock_);
      epoch = epoch_;
      hold_ns = hold.elapsed_ns();
    } else {
      epoch = epoch_;
    }
  }
  if constexpr (kTelemetryEnabled) {
    m_epoch_mu_hold_seconds_->record(workers_,
                                     static_cast<double>(hold_ns) * 1e-9);
  }
  return epoch;
}

void OracleEngine::set_epoch(std::shared_ptr<const LocationEpoch> epoch,
                             bool require_new_id) {
  // Swap duration covers validation + the guarded swap; the epoch_mu_ hold
  // time covers only the critical section. Both recorded after the unlock.
  std::optional<Stopwatch> swap_watch;
  if constexpr (kTelemetryEnabled) swap_watch.emplace(*clock_);
  RON_CHECK(epoch != nullptr && epoch->service != nullptr,
            "OracleEngine: epoch must carry a location service");
  RON_CHECK(!labeling_.has_value() || labeling_->n() == epoch->service->n(),
            "OracleEngine: labeling over " << labeling_->n()
                                           << " nodes, location over "
                                           << epoch->service->n());
  const std::size_t hop_bound = location_hop_bound(epoch->service->n());
  std::uint64_t hold_ns = 0;
  {
    MutexLock lk(epoch_mu_);
    std::optional<Stopwatch> hold_watch;
    if constexpr (kTelemetryEnabled) hold_watch.emplace(*clock_);
    if (epoch_ != nullptr) {
      RON_CHECK(epoch_->service->n() == epoch->service->n(),
                "OracleEngine: epoch over " << epoch->service->n()
                                            << " nodes, serving "
                                            << epoch_->service->n());
      // Cache shards are invalidated by id comparison, and a worker's tag
      // can hold ANY previously served id — so applied ids must strictly
      // increase (not merely differ), or an id reused across sources (e.g.
      // epochs from two different mutators, both of which number from 1)
      // could silently serve the old epoch's cached results.
      RON_CHECK(!require_new_id || epoch->id > epoch_->id,
                "OracleEngine: epoch id " << epoch->id
                                          << " must exceed the current epoch's "
                                          << epoch_->id);
    }
    epoch_ = std::move(epoch);
    if constexpr (kTelemetryEnabled) hold_ns = hold_watch->elapsed_ns();
  }
  if constexpr (kTelemetryEnabled) {
    m_epoch_mu_hold_seconds_->record(workers_,
                                     static_cast<double>(hold_ns) * 1e-9);
    m_epoch_swaps_->add(workers_);
    m_epoch_swap_seconds_->record(workers_, swap_watch->elapsed_seconds());
    // Visible yardstick for the violation counter (Theorem 5.2(a)'s
    // 4*ceil(log2 n)+8 for the current epoch's node count).
    m_hop_bound_->set(static_cast<double>(hop_bound));
  }
}

void OracleEngine::attach_location(const LocationService& svc,
                                   LocateOptions locate_opts) {
  RON_CHECK(current_epoch() == nullptr,
            "OracleEngine: location service already attached");
  locate_opts_ = locate_opts;
  auto epoch = std::make_shared<LocationEpoch>();
  // Non-owning: the legacy contract is that `svc` outlives the engine.
  epoch->service = std::shared_ptr<const LocationService>(
      std::shared_ptr<void>(), &svc);
  set_epoch(std::move(epoch), /*require_new_id=*/false);
}

void OracleEngine::apply(std::shared_ptr<const LocationEpoch> epoch) {
  set_epoch(std::move(epoch), /*require_new_id=*/true);
}

const LocationService& OracleEngine::location() const {
  const auto epoch = current_epoch();
  RON_CHECK(epoch != nullptr, "OracleEngine: no location service");
  return *epoch->service;
}

void OracleEngine::start_pool() {
  if (workers_ > 1) {
    pool_.reserve(workers_);
    for (unsigned w = 0; w < workers_; ++w) {
      pool_.emplace_back([this, w] { worker_main(w); });
    }
  }
}

Dist OracleEngine::estimate(NodeId u, NodeId v) const {
  const DistanceLabeling& dls = labeling();
  RON_CHECK(u < dls.n() && v < dls.n(), "estimate: node id out of range");
  return DistanceLabeling::estimate(dls.label(u), dls.label(v)).upper;
}

LocateResult OracleEngine::locate(NodeId querier, ObjectId obj) const {
  const auto epoch = current_epoch();
  RON_CHECK(epoch != nullptr, "OracleEngine: no location service");
  return epoch->service->locate(querier, obj, locate_opts_);
}

void OracleEngine::worker_main(unsigned w) {
  std::uint64_t seen = 0;
  // Explicit lock/unlock rather than a scoped guard: the protocol holds
  // mu_ across the park/claim edge and releases it around the shard work.
  // The predicate is an inline loop (not a wait(lk, pred) lambda) so the
  // thread-safety analysis can see the guarded reads under the lock.
  mu_.lock();
  while (true) {
    while (!stop_ && generation_ == seen) cv_start_.wait(mu_);
    if (stop_) {
      mu_.unlock();
      return;
    }
    seen = generation_;
    // Copy the shard function so it survives the unlocked region even if
    // the dispatcher publishes the next batch before this worker reawakens.
    auto fn = batch_fn_;
    mu_.unlock();
    std::exception_ptr err;
    try {
      fn(w);
    } catch (...) {
      err = std::current_exception();
    }
    mu_.lock();
    if (err != nullptr && batch_error_ == nullptr) batch_error_ = err;
    if (--remaining_ == 0) cv_done_.notify_one();
  }
}

void OracleEngine::process_estimate_shard(unsigned w,
                                          std::span<const QueryPair> pairs,
                                          std::vector<Dist>& results) {
  const DistanceLabeling& dls = *labeling_;
  LruShard<Dist>& cache = estimate_cache_[w];
  // Per-query telemetry goes into batch-local plain scratch (one clock
  // read per query via chained stamps: each query's end stamp is the next
  // one's start, and the telescoped sum equals the shard's true wall
  // time). The shared atomic shards are touched once per batch, below —
  // shard w is single-owner here (batch protocol), so the single-owner
  // merge/add fast paths apply.
  [[maybe_unused]] LocalHistogram latency;
  [[maybe_unused]] std::uint64_t hits_n = 0;
  [[maybe_unused]] std::uint64_t misses_n = 0;
  std::uint64_t t0 = 0;
  if constexpr (kTelemetryEnabled) t0 = query_now_ns();
  for (std::uint32_t i : shard_index_[w]) {
    const auto [u, v] = pairs[i];
    const std::uint64_t key = pair_key(u, v);
    Dist d;
    const bool hit = cache.enabled() && cache.get(key, d);
    if (!hit) {
      d = DistanceLabeling::estimate(dls.label(u), dls.label(v)).upper;
      if (cache.enabled()) cache.put(key, d);
    }
    results[i] = d;
    if constexpr (kTelemetryEnabled) {
      // Latency covers cache hits too — a hit's latency is the latency the
      // caller saw. Hit/miss counters split the population.
      const std::uint64_t t1 = query_now_ns();
      latency.record(static_cast<double>(t1 - t0) * 1e-9);
      ++(hit ? hits_n : misses_n);
      t0 = t1;
    }
  }
  if constexpr (kTelemetryEnabled) {
    m_estimate_latency_->merge_single_owner(w, latency.h);
    m_estimate_cache_hits_->add_single_owner(w, hits_n);
    m_estimate_cache_misses_->add_single_owner(w, misses_n);
  }
}

void OracleEngine::process_locate_shard(unsigned w,
                                        const LocationEpoch& epoch,
                                        std::span<const LocateQuery> queries,
                                        std::vector<LocateResult>& results) {
  const LocationService& svc = *epoch.service;
  LruShard<LocateResult>& cache = locate_cache_[w];
  // Epoch boundary: this shard is only ever touched by worker w during a
  // batch, so the lazy clear is race-free even when apply() swapped the
  // epoch while a previous batch was in flight.
  if (locate_cache_epoch_[w] != epoch.id) {
    cache.clear();
    locate_cache_epoch_[w] = epoch.id;
    if constexpr (kTelemetryEnabled) m_cache_invalidations_->add(w);
  }
  const std::size_t hop_bound = location_hop_bound(svc.n());
  // Batch-local scratch + chained clock reads, exactly as in
  // process_estimate_shard (shard w is this worker's alone for the whole
  // batch).
  [[maybe_unused]] LocalHistogram latency;
  [[maybe_unused]] LocalHistogram hops;
  [[maybe_unused]] LocalHistogram stretch;
  [[maybe_unused]] std::uint64_t hits_n = 0;
  [[maybe_unused]] std::uint64_t misses_n = 0;
  [[maybe_unused]] std::uint64_t not_found_n = 0;
  [[maybe_unused]] std::uint64_t violations_n = 0;
  std::uint64_t t0 = 0;
  if constexpr (kTelemetryEnabled) t0 = query_now_ns();
  for (std::uint32_t i : shard_index_[w]) {
    const auto [querier, obj] = queries[i];
    const std::uint64_t key = locate_key(querier, obj);
    LocateResult r;
    const bool hit = cache.enabled() && cache.get(key, r);
    if (!hit) {
      bool traced = false;
      if constexpr (kTelemetryEnabled) {
        // Trace only real walks (a cache hit repeats no hops), sampled by
        // the sink so the per-hop ring-level scan stays off the common
        // path.
        if (trace_sink_ != nullptr && trace_sink_->should_sample()) {
          LocateTrace trace;
          r = svc.locate(querier, obj, locate_opts_, &trace);
          trace_sink_->record(std::move(trace));
          traced = true;
        }
      }
      if (!traced) r = svc.locate(querier, obj, locate_opts_);
      if (cache.enabled()) cache.put(key, r);
    }
    results[i] = r;
    if constexpr (kTelemetryEnabled) {
      const std::uint64_t t1 = query_now_ns();
      latency.record(static_cast<double>(t1 - t0) * 1e-9);
      t0 = t1;
      ++(hit ? hits_n : misses_n);
      // Hop/stretch distributions (and the bound-violation counter) cover
      // real ring walks only: a cache hit repeats no hops, and counting
      // cached copies would skew the overlay's routing distribution toward
      // hot keys (and double-count a violating walk). Histogram counts
      // therefore line up with the miss counter, not the query count.
      if (!hit) {
        hops.record(static_cast<double>(r.hops));
        if (r.found) {
          stretch.record(r.route_stretch);
        } else {
          ++not_found_n;
        }
        if (r.hops > hop_bound) ++violations_n;
      }
    }
  }
  if constexpr (kTelemetryEnabled) {
    m_locate_latency_->merge_single_owner(w, latency.h);
    m_locate_hops_->merge_single_owner(w, hops.h);
    m_locate_route_stretch_->merge_single_owner(w, stretch.h);
    m_locate_cache_hits_->add_single_owner(w, hits_n);
    m_locate_cache_misses_->add_single_owner(w, misses_n);
    m_locate_not_found_->add_single_owner(w, not_found_n);
    m_hop_bound_violations_->add_single_owner(w, violations_n);
  }
}

std::size_t OracleEngine::cache_hits() const {
  std::size_t hits = 0;
  for (const auto& shard : estimate_cache_) hits += shard.hits();
  for (const auto& shard : locate_cache_) hits += shard.hits();
  return hits;
}

template <typename SourceOf>
void OracleEngine::run_batch(std::size_t count, SourceOf&& source_of,
                             const std::function<void(unsigned)>& shard_fn) {
  // Batch wall time is always measured (one clock read pair per batch):
  // last_batch_stats()/totals() stay live even with telemetry compiled
  // out.
  const Stopwatch batch_watch(*clock_);

  // Shard by source node: all queries from one source land on one worker
  // (and one cache shard), so a hot source stays cache-local.
  for (auto& idx : shard_index_) idx.clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    shard_index_[source_of(i) % workers_].push_back(i);
  }

  if (workers_ == 1) {
    shard_fn(0);
  } else {
    std::uint64_t publish_hold_ns = 0;
    {
      MutexLock lk(mu_);
      std::optional<Stopwatch> hold_watch;
      if constexpr (kTelemetryEnabled) hold_watch.emplace(*clock_);
      batch_fn_ = shard_fn;
      batch_error_ = nullptr;
      remaining_ = workers_;
      ++generation_;
      if constexpr (kTelemetryEnabled) {
        publish_hold_ns = hold_watch->elapsed_ns();
      }
    }
    if constexpr (kTelemetryEnabled) {
      // Only the publish section is hold-timed: the wait section below
      // releases mu_ inside cv_done_.wait, so "time in the block" there
      // would mostly be time the lock was NOT held.
      m_mu_hold_seconds_->record(
          workers_, static_cast<double>(publish_hold_ns) * 1e-9);
    }
    cv_start_.notify_all();
    std::exception_ptr err;
    {
      MutexLock lk(mu_);
      while (remaining_ != 0) cv_done_.wait(mu_);
      batch_fn_ = nullptr;
      err = batch_error_;
      batch_error_ = nullptr;
    }
    if (err != nullptr) std::rethrow_exception(err);
  }

  // Clamp to >= 1ns: a tiny batch can finish inside one clock tick, and a
  // 0-second batch would report qps = 0 — a *fast* batch masquerading as
  // zero throughput in bench JSON and the loadgen. One nanosecond is the
  // clock's own resolution, so the clamp never understates a real duration.
  const std::uint64_t elapsed_ns =
      std::max<std::uint64_t>(batch_watch.elapsed_ns(), 1);
  last_.queries = count;
  last_.seconds = static_cast<double>(elapsed_ns) * 1e-9;
  last_.qps = static_cast<double>(count) / last_.seconds;
  last_.cache_hits = cache_hits();  // shards were reset at batch start
  total_batches_.fetch_add(1, std::memory_order_relaxed);
  total_queries_.fetch_add(count, std::memory_order_relaxed);
  total_busy_ns_.fetch_add(elapsed_ns, std::memory_order_relaxed);
  total_cache_hits_.fetch_add(last_.cache_hits, std::memory_order_relaxed);
}

EngineTotals OracleEngine::totals() const {
  EngineTotals t;
  t.batches = total_batches_.load(std::memory_order_relaxed);
  t.queries = total_queries_.load(std::memory_order_relaxed);
  t.seconds =
      static_cast<double>(total_busy_ns_.load(std::memory_order_relaxed)) *
      1e-9;
  t.cache_hits = total_cache_hits_.load(std::memory_order_relaxed);
  return t;
}

std::vector<Dist> OracleEngine::estimate_batch(
    std::span<const QueryPair> pairs) {
  const DistanceLabeling& dls = labeling();
  RON_CHECK(pairs.size() < (1ull << 32), "estimate_batch: batch too large");
  for (const auto& [u, v] : pairs) {
    RON_CHECK(u < dls.n() && v < dls.n(),
              "estimate_batch: node id out of range (" << u << "," << v
                                                       << "), n=" << dls.n());
  }
  for (auto& shard : estimate_cache_) shard.reset_hits();
  for (auto& shard : locate_cache_) shard.reset_hits();

  std::vector<Dist> results(pairs.size(), kInfDist);
  run_batch(pairs.size(), [&](std::uint32_t i) { return pairs[i].first; },
            [this, pairs, &results](unsigned w) {
              process_estimate_shard(w, pairs, results);
            });
  if constexpr (kTelemetryEnabled) {
    m_estimate_batch_seconds_->record(workers_, last_.seconds);
  }
  return results;
}

std::vector<LocateResult> OracleEngine::locate_batch(
    std::span<const LocateQuery> queries) {
  // Pin the epoch for the whole batch: validation and serving must see the
  // same directory even if apply() swaps the epoch mid-batch.
  const std::shared_ptr<const LocationEpoch> epoch = current_epoch();
  RON_CHECK(epoch != nullptr, "OracleEngine: no location service");
  const LocationService& svc = *epoch->service;
  RON_CHECK(queries.size() < (1ull << 32), "locate_batch: batch too large");
  const std::size_t objects = svc.directory().num_objects();
  for (const auto& [querier, obj] : queries) {
    RON_CHECK(querier < svc.n(), "locate_batch: querier " << querier
                                     << " out of range, n=" << svc.n());
    RON_CHECK(obj < objects, "locate_batch: object id "
                                 << obj << " out of range ("
                                 << objects << " objects)");
  }
  for (auto& shard : estimate_cache_) shard.reset_hits();
  for (auto& shard : locate_cache_) shard.reset_hits();

  std::vector<LocateResult> results(queries.size());
  run_batch(queries.size(), [&](std::uint32_t i) { return queries[i].first; },
            [this, &epoch, queries, &results](unsigned w) {
              process_locate_shard(w, *epoch, queries, results);
            });
  if constexpr (kTelemetryEnabled) {
    m_locate_batch_seconds_->record(workers_, last_.seconds);
  }
  return results;
}

}  // namespace ron
