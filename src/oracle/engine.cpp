#include "oracle/engine.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"

namespace ron {

std::vector<QueryPair> random_query_pairs(std::size_t count, std::size_t n,
                                          Rng& rng) {
  std::vector<QueryPair> pairs(count);
  for (auto& p : pairs) {
    p = {static_cast<NodeId>(rng.index(n)), static_cast<NodeId>(rng.index(n))};
  }
  return pairs;
}

OracleEngine::OracleEngine(OracleOptions opts) {
  if (opts.num_threads != 0) {
    RON_CHECK(opts.num_threads <= 256,
              "OracleEngine: " << opts.num_threads << " threads");
    workers_ = opts.num_threads;
  } else {
    // Auto mode: one per hardware thread, clamped (not rejected) on very
    // large hosts.
    workers_ = std::min(256u, std::max(1u,
                                       std::thread::hardware_concurrency()));
  }
  // Per-worker cache shards; at least one entry each when caching is on.
  cache_capacity_per_shard_ =
      opts.cache_capacity == 0
          ? 0
          : std::max<std::size_t>(1, opts.cache_capacity / workers_);
  estimate_cache_.reserve(workers_);
  locate_cache_.reserve(workers_);
  for (unsigned w = 0; w < workers_; ++w) {
    estimate_cache_.emplace_back(cache_capacity_per_shard_);
    locate_cache_.emplace_back(cache_capacity_per_shard_);
  }
  locate_cache_epoch_.assign(workers_, 0);
  shard_index_.resize(workers_);
  start_pool();
}

OracleEngine::OracleEngine(DistanceLabeling labeling, OracleOptions opts)
    : OracleEngine(opts) {
  labeling_ = std::move(labeling);
}

OracleEngine::OracleEngine(const LocationService& svc, OracleOptions opts,
                           LocateOptions locate_opts)
    : OracleEngine(opts) {
  attach_location(svc, locate_opts);
}

OracleEngine::OracleEngine(std::shared_ptr<const LocationEpoch> epoch,
                           OracleOptions opts, LocateOptions locate_opts)
    : OracleEngine(opts) {
  locate_opts_ = locate_opts;
  set_epoch(std::move(epoch), /*require_new_id=*/false);
}

OracleEngine::~OracleEngine() {
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : pool_) t.join();
}

std::size_t OracleEngine::n() const {
  if (labeling_.has_value()) return labeling_->n();
  const auto epoch = current_epoch();
  RON_CHECK(epoch != nullptr, "OracleEngine: no snapshot state");
  return epoch->service->n();
}

const DistanceLabeling& OracleEngine::labeling() const {
  RON_CHECK(labeling_.has_value(), "OracleEngine: no labeling attached");
  return *labeling_;
}

std::shared_ptr<const LocationEpoch> OracleEngine::current_epoch() const {
  MutexLock lk(epoch_mu_);
  return epoch_;
}

void OracleEngine::set_epoch(std::shared_ptr<const LocationEpoch> epoch,
                             bool require_new_id) {
  RON_CHECK(epoch != nullptr && epoch->service != nullptr,
            "OracleEngine: epoch must carry a location service");
  RON_CHECK(!labeling_.has_value() || labeling_->n() == epoch->service->n(),
            "OracleEngine: labeling over " << labeling_->n()
                                           << " nodes, location over "
                                           << epoch->service->n());
  MutexLock lk(epoch_mu_);
  if (epoch_ != nullptr) {
    RON_CHECK(epoch_->service->n() == epoch->service->n(),
              "OracleEngine: epoch over " << epoch->service->n()
                                          << " nodes, serving "
                                          << epoch_->service->n());
    // Cache shards are invalidated by id comparison, and a worker's tag
    // can hold ANY previously served id — so applied ids must strictly
    // increase (not merely differ), or an id reused across sources (e.g.
    // epochs from two different mutators, both of which number from 1)
    // could silently serve the old epoch's cached results.
    RON_CHECK(!require_new_id || epoch->id > epoch_->id,
              "OracleEngine: epoch id " << epoch->id
                                        << " must exceed the current epoch's "
                                        << epoch_->id);
  }
  epoch_ = std::move(epoch);
}

void OracleEngine::attach_location(const LocationService& svc,
                                   LocateOptions locate_opts) {
  RON_CHECK(current_epoch() == nullptr,
            "OracleEngine: location service already attached");
  locate_opts_ = locate_opts;
  auto epoch = std::make_shared<LocationEpoch>();
  // Non-owning: the legacy contract is that `svc` outlives the engine.
  epoch->service = std::shared_ptr<const LocationService>(
      std::shared_ptr<void>(), &svc);
  set_epoch(std::move(epoch), /*require_new_id=*/false);
}

void OracleEngine::apply(std::shared_ptr<const LocationEpoch> epoch) {
  set_epoch(std::move(epoch), /*require_new_id=*/true);
}

const LocationService& OracleEngine::location() const {
  const auto epoch = current_epoch();
  RON_CHECK(epoch != nullptr, "OracleEngine: no location service");
  return *epoch->service;
}

void OracleEngine::start_pool() {
  if (workers_ > 1) {
    pool_.reserve(workers_);
    for (unsigned w = 0; w < workers_; ++w) {
      pool_.emplace_back([this, w] { worker_main(w); });
    }
  }
}

Dist OracleEngine::estimate(NodeId u, NodeId v) const {
  const DistanceLabeling& dls = labeling();
  RON_CHECK(u < dls.n() && v < dls.n(), "estimate: node id out of range");
  return DistanceLabeling::estimate(dls.label(u), dls.label(v)).upper;
}

LocateResult OracleEngine::locate(NodeId querier, ObjectId obj) const {
  const auto epoch = current_epoch();
  RON_CHECK(epoch != nullptr, "OracleEngine: no location service");
  return epoch->service->locate(querier, obj, locate_opts_);
}

void OracleEngine::worker_main(unsigned w) {
  std::uint64_t seen = 0;
  // Explicit lock/unlock rather than a scoped guard: the protocol holds
  // mu_ across the park/claim edge and releases it around the shard work.
  // The predicate is an inline loop (not a wait(lk, pred) lambda) so the
  // thread-safety analysis can see the guarded reads under the lock.
  mu_.lock();
  while (true) {
    while (!stop_ && generation_ == seen) cv_start_.wait(mu_);
    if (stop_) {
      mu_.unlock();
      return;
    }
    seen = generation_;
    // Copy the shard function so it survives the unlocked region even if
    // the dispatcher publishes the next batch before this worker reawakens.
    auto fn = batch_fn_;
    mu_.unlock();
    std::exception_ptr err;
    try {
      fn(w);
    } catch (...) {
      err = std::current_exception();
    }
    mu_.lock();
    if (err != nullptr && batch_error_ == nullptr) batch_error_ = err;
    if (--remaining_ == 0) cv_done_.notify_one();
  }
}

void OracleEngine::process_estimate_shard(unsigned w,
                                          std::span<const QueryPair> pairs,
                                          std::vector<Dist>& results) {
  const DistanceLabeling& dls = *labeling_;
  LruShard<Dist>& cache = estimate_cache_[w];
  for (std::uint32_t i : shard_index_[w]) {
    const auto [u, v] = pairs[i];
    const std::uint64_t key = pair_key(u, v);
    Dist d;
    if (cache.enabled() && cache.get(key, d)) {
      results[i] = d;
      continue;
    }
    d = DistanceLabeling::estimate(dls.label(u), dls.label(v)).upper;
    if (cache.enabled()) cache.put(key, d);
    results[i] = d;
  }
}

void OracleEngine::process_locate_shard(unsigned w,
                                        const LocationEpoch& epoch,
                                        std::span<const LocateQuery> queries,
                                        std::vector<LocateResult>& results) {
  const LocationService& svc = *epoch.service;
  LruShard<LocateResult>& cache = locate_cache_[w];
  // Epoch boundary: this shard is only ever touched by worker w during a
  // batch, so the lazy clear is race-free even when apply() swapped the
  // epoch while a previous batch was in flight.
  if (locate_cache_epoch_[w] != epoch.id) {
    cache.clear();
    locate_cache_epoch_[w] = epoch.id;
  }
  for (std::uint32_t i : shard_index_[w]) {
    const auto [querier, obj] = queries[i];
    const std::uint64_t key = locate_key(querier, obj);
    LocateResult r;
    if (cache.enabled() && cache.get(key, r)) {
      results[i] = r;
      continue;
    }
    r = svc.locate(querier, obj, locate_opts_);
    if (cache.enabled()) cache.put(key, r);
    results[i] = r;
  }
}

std::size_t OracleEngine::cache_hits() const {
  std::size_t hits = 0;
  for (const auto& shard : estimate_cache_) hits += shard.hits();
  for (const auto& shard : locate_cache_) hits += shard.hits();
  return hits;
}

template <typename SourceOf>
void OracleEngine::run_batch(std::size_t count, SourceOf&& source_of,
                             const std::function<void(unsigned)>& shard_fn) {
  const auto start = std::chrono::steady_clock::now();

  // Shard by source node: all queries from one source land on one worker
  // (and one cache shard), so a hot source stays cache-local.
  for (auto& idx : shard_index_) idx.clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    shard_index_[source_of(i) % workers_].push_back(i);
  }

  if (workers_ == 1) {
    shard_fn(0);
  } else {
    {
      MutexLock lk(mu_);
      batch_fn_ = shard_fn;
      batch_error_ = nullptr;
      remaining_ = workers_;
      ++generation_;
    }
    cv_start_.notify_all();
    std::exception_ptr err;
    {
      MutexLock lk(mu_);
      while (remaining_ != 0) cv_done_.wait(mu_);
      batch_fn_ = nullptr;
      err = batch_error_;
      batch_error_ = nullptr;
    }
    if (err != nullptr) std::rethrow_exception(err);
  }

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  last_.queries = count;
  last_.seconds = elapsed.count();
  last_.qps = last_.seconds > 0.0
                  ? static_cast<double>(count) / last_.seconds
                  : 0.0;
  last_.cache_hits = cache_hits();  // shards were reset at batch start
  ++totals_.batches;
  totals_.queries += last_.queries;
  totals_.seconds += last_.seconds;
  totals_.cache_hits += last_.cache_hits;
}

std::vector<Dist> OracleEngine::estimate_batch(
    std::span<const QueryPair> pairs) {
  const DistanceLabeling& dls = labeling();
  RON_CHECK(pairs.size() < (1ull << 32), "estimate_batch: batch too large");
  for (const auto& [u, v] : pairs) {
    RON_CHECK(u < dls.n() && v < dls.n(),
              "estimate_batch: node id out of range (" << u << "," << v
                                                       << "), n=" << dls.n());
  }
  for (auto& shard : estimate_cache_) shard.reset_hits();
  for (auto& shard : locate_cache_) shard.reset_hits();

  std::vector<Dist> results(pairs.size(), kInfDist);
  run_batch(pairs.size(), [&](std::uint32_t i) { return pairs[i].first; },
            [this, pairs, &results](unsigned w) {
              process_estimate_shard(w, pairs, results);
            });
  return results;
}

std::vector<LocateResult> OracleEngine::locate_batch(
    std::span<const LocateQuery> queries) {
  // Pin the epoch for the whole batch: validation and serving must see the
  // same directory even if apply() swaps the epoch mid-batch.
  const std::shared_ptr<const LocationEpoch> epoch = current_epoch();
  RON_CHECK(epoch != nullptr, "OracleEngine: no location service");
  const LocationService& svc = *epoch->service;
  RON_CHECK(queries.size() < (1ull << 32), "locate_batch: batch too large");
  const std::size_t objects = svc.directory().num_objects();
  for (const auto& [querier, obj] : queries) {
    RON_CHECK(querier < svc.n(), "locate_batch: querier " << querier
                                     << " out of range, n=" << svc.n());
    RON_CHECK(obj < objects, "locate_batch: object id "
                                 << obj << " out of range ("
                                 << objects << " objects)");
  }
  for (auto& shard : estimate_cache_) shard.reset_hits();
  for (auto& shard : locate_cache_) shard.reset_hits();

  std::vector<LocateResult> results(queries.size());
  run_batch(queries.size(), [&](std::uint32_t i) { return queries[i].first; },
            [this, &epoch, queries, &results](unsigned w) {
              process_locate_shard(w, *epoch, queries, results);
            });
  return results;
}

}  // namespace ron
