#include "oracle/engine.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"

namespace ron {

std::vector<QueryPair> random_query_pairs(std::size_t count, std::size_t n,
                                          Rng& rng) {
  std::vector<QueryPair> pairs(count);
  for (auto& p : pairs) {
    p = {static_cast<NodeId>(rng.index(n)), static_cast<NodeId>(rng.index(n))};
  }
  return pairs;
}

bool OracleEngine::LruShard::get(std::uint64_t key, Dist& out) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  order_.splice(order_.begin(), order_, it->second);  // refresh recency
  out = it->second->second;
  ++hits_;
  return true;
}

void OracleEngine::LruShard::put(std::uint64_t key, Dist value) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    order_.splice(order_.begin(), order_, it->second);
    it->second->second = value;
    return;
  }
  if (map_.size() >= capacity_) {
    map_.erase(order_.back().first);
    order_.pop_back();
  }
  order_.emplace_front(key, value);
  map_.emplace(key, order_.begin());
}

OracleEngine::OracleEngine(DistanceLabeling labeling, OracleOptions opts)
    : labeling_(std::move(labeling)) {
  if (opts.num_threads != 0) {
    RON_CHECK(opts.num_threads <= 256,
              "OracleEngine: " << opts.num_threads << " threads");
    workers_ = opts.num_threads;
  } else {
    // Auto mode: one per hardware thread, clamped (not rejected) on very
    // large hosts.
    workers_ = std::min(256u, std::max(1u,
                                       std::thread::hardware_concurrency()));
  }
  // Per-worker cache shards; at least one entry each when caching is on.
  const std::size_t per_shard =
      opts.cache_capacity == 0
          ? 0
          : std::max<std::size_t>(1, opts.cache_capacity / workers_);
  cache_.reserve(workers_);
  for (unsigned w = 0; w < workers_; ++w) cache_.emplace_back(per_shard);
  shard_index_.resize(workers_);
  if (workers_ > 1) {
    pool_.reserve(workers_);
    for (unsigned w = 0; w < workers_; ++w) {
      pool_.emplace_back([this, w] { worker_main(w); });
    }
  }
}

OracleEngine::~OracleEngine() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : pool_) t.join();
}

Dist OracleEngine::estimate(NodeId u, NodeId v) const {
  RON_CHECK(u < n() && v < n(), "estimate: node id out of range");
  return DistanceLabeling::estimate(labeling_.label(u), labeling_.label(v))
      .upper;
}

void OracleEngine::worker_main(unsigned w) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    cv_start_.wait(lk, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    auto pairs = batch_pairs_;
    std::vector<Dist>* results = batch_results_;
    lk.unlock();
    std::exception_ptr err;
    try {
      process_shard(w, pairs, *results);
    } catch (...) {
      err = std::current_exception();
    }
    lk.lock();
    if (err != nullptr && batch_error_ == nullptr) batch_error_ = err;
    if (--remaining_ == 0) cv_done_.notify_one();
  }
}

void OracleEngine::process_shard(unsigned w, std::span<const QueryPair> pairs,
                                 std::vector<Dist>& results) {
  LruShard& cache = cache_[w];
  for (std::uint32_t i : shard_index_[w]) {
    const auto [u, v] = pairs[i];
    const std::uint64_t key = pair_key(u, v);
    Dist d;
    if (cache.enabled() && cache.get(key, d)) {
      results[i] = d;
      continue;
    }
    d = DistanceLabeling::estimate(labeling_.label(u), labeling_.label(v))
            .upper;
    if (cache.enabled()) cache.put(key, d);
    results[i] = d;
  }
}

std::vector<Dist> OracleEngine::estimate_batch(
    std::span<const QueryPair> pairs) {
  RON_CHECK(pairs.size() < (1ull << 32), "estimate_batch: batch too large");
  for (const auto& [u, v] : pairs) {
    RON_CHECK(u < n() && v < n(), "estimate_batch: node id out of range ("
                                      << u << "," << v << "), n=" << n());
  }
  const auto start = std::chrono::steady_clock::now();

  // Shard by source node: all queries from one source land on one worker
  // (and one cache shard), so a hot source stays cache-local.
  for (auto& idx : shard_index_) idx.clear();
  for (std::uint32_t i = 0; i < pairs.size(); ++i) {
    shard_index_[pairs[i].first % workers_].push_back(i);
  }
  for (LruShard& shard : cache_) shard.reset_hits();

  std::vector<Dist> results(pairs.size(), kInfDist);
  if (workers_ == 1) {
    process_shard(0, pairs, results);
  } else {
    {
      std::lock_guard<std::mutex> lk(mu_);
      batch_pairs_ = pairs;
      batch_results_ = &results;
      batch_error_ = nullptr;
      remaining_ = workers_;
      ++generation_;
    }
    cv_start_.notify_all();
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return remaining_ == 0; });
    batch_results_ = nullptr;
    if (batch_error_ != nullptr) {
      std::exception_ptr err = batch_error_;
      batch_error_ = nullptr;
      lk.unlock();
      std::rethrow_exception(err);
    }
  }

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  last_.queries = pairs.size();
  last_.seconds = elapsed.count();
  last_.qps = last_.seconds > 0.0
                  ? static_cast<double>(pairs.size()) / last_.seconds
                  : 0.0;
  last_.cache_hits = 0;
  for (const LruShard& shard : cache_) last_.cache_hits += shard.hits();
  ++totals_.batches;
  totals_.queries += last_.queries;
  totals_.seconds += last_.seconds;
  totals_.cache_hits += last_.cache_hits;
  return results;
}

}  // namespace ron
