// OracleEngine: the query-serving half of the oracle subsystem.
//
// A loaded DistanceLabeling is immutable, and DistanceLabeling::estimate is a
// pure function of two labels — so serving parallelizes embarrassingly. The
// engine owns the snapshot plus a fixed pool of worker threads and answers
// *batched* estimate queries: a batch is sharded by source node across the
// workers (pair i goes to worker source % W), each worker writes its answers
// into disjoint slots of the shared result vector, and an optional
// bounded-LRU result cache is split into per-worker shards so cache lookups
// never take a lock. Results are bit-identical to calling
// DistanceLabeling::estimate serially, for any thread count and any cache
// size.
//
// Threading contract: batches are submitted from one dispatcher thread at a
// time (the engine is the concurrency). Workers park on a condition variable
// between batches; the pool is joined on destruction.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <list>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "labeling/distance_labels.h"

namespace ron {

/// One distance query: (source, target) node ids.
using QueryPair = std::pair<NodeId, NodeId>;

/// `count` uniform random query pairs over [0, n) — the shared synthetic
/// workload generator of the QPS bench, the CLI's bench subcommand and the
/// engine tests.
std::vector<QueryPair> random_query_pairs(std::size_t count, std::size_t n,
                                          Rng& rng);

struct OracleOptions {
  /// Worker threads; 0 = one per hardware core.
  unsigned num_threads = 1;
  /// Total LRU result-cache entries across all worker shards; 0 disables
  /// the cache.
  std::size_t cache_capacity = 0;
};

/// Measurements of one estimate_batch call.
struct BatchStats {
  std::size_t queries = 0;
  double seconds = 0.0;
  double qps = 0.0;  // queries / seconds
  std::size_t cache_hits = 0;
};

/// Running totals across the engine's lifetime.
struct EngineTotals {
  std::size_t batches = 0;
  std::size_t queries = 0;
  double seconds = 0.0;
  std::size_t cache_hits = 0;
};

class OracleEngine {
 public:
  explicit OracleEngine(DistanceLabeling labeling, OracleOptions opts = {});
  ~OracleEngine();

  OracleEngine(const OracleEngine&) = delete;
  OracleEngine& operator=(const OracleEngine&) = delete;

  std::size_t n() const { return labeling_.n(); }
  unsigned num_workers() const { return workers_; }
  const DistanceLabeling& labeling() const { return labeling_; }

  /// Single query (validated); computed inline, bypassing pool and cache.
  Dist estimate(NodeId u, NodeId v) const;

  /// Answers every pair; results[i] corresponds to pairs[i]. Node ids are
  /// validated up front (throws ron::Error). Updates last_batch_stats().
  std::vector<Dist> estimate_batch(std::span<const QueryPair> pairs);

  const BatchStats& last_batch_stats() const { return last_; }
  const EngineTotals& totals() const { return totals_; }

 private:
  /// One worker's private slice of the result cache. Keyed by the unordered
  /// pair (estimates are symmetric); classic list+map LRU.
  class LruShard {
   public:
    explicit LruShard(std::size_t capacity) : capacity_(capacity) {}

    bool enabled() const { return capacity_ > 0; }
    bool get(std::uint64_t key, Dist& out);
    void put(std::uint64_t key, Dist value);
    std::size_t hits() const { return hits_; }
    void reset_hits() { hits_ = 0; }

   private:
    std::size_t capacity_;
    std::size_t hits_ = 0;
    std::list<std::pair<std::uint64_t, Dist>> order_;  // front = most recent
    std::unordered_map<std::uint64_t,
                       std::list<std::pair<std::uint64_t, Dist>>::iterator>
        map_;
  };

  static std::uint64_t pair_key(NodeId u, NodeId v) {
    const NodeId lo = u < v ? u : v;
    const NodeId hi = u < v ? v : u;
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }

  void worker_main(unsigned w);
  void process_shard(unsigned w, std::span<const QueryPair> pairs,
                     std::vector<Dist>& results);

  DistanceLabeling labeling_;
  unsigned workers_ = 1;
  std::vector<LruShard> cache_;  // one shard per worker

  // Pool state (guarded by mu_). Batches publish {pairs, results, shard
  // index lists}, bump generation_ and wait for remaining_ to hit zero.
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::vector<std::thread> pool_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;
  unsigned remaining_ = 0;
  // First exception a worker hit this batch; rethrown to the dispatcher so
  // a malformed query/snapshot surfaces as ron::Error, never std::terminate.
  std::exception_ptr batch_error_;
  std::span<const QueryPair> batch_pairs_;
  std::vector<Dist>* batch_results_ = nullptr;
  std::vector<std::vector<std::uint32_t>> shard_index_;  // per worker

  BatchStats last_;
  EngineTotals totals_;
};

}  // namespace ron
