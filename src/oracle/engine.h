// OracleEngine: the query-serving half of the oracle subsystem.
//
// The engine owns immutable snapshot state plus a fixed pool of worker
// threads and answers *batched* queries of two kinds:
//
//   - estimate_batch: distance estimates from a loaded DistanceLabeling.
//     DistanceLabeling::estimate is a pure function of two labels, so
//     serving parallelizes embarrassingly.
//   - locate_batch: nearest-copy object location through an attached
//     LocationService (greedy ring-walks; LocationService is immutable and
//     safe to share across threads).
//
// Both paths share the same machinery: a batch is sharded by source/querier
// node across the workers (query i goes to worker source % W), each worker
// writes its answers into disjoint slots of the shared result vector, and
// an optional bounded-LRU result cache is split into per-worker shards so
// cache lookups never take a lock (sharding by source keeps a hot source
// cache-local). Results are bit-identical to running the queries serially,
// for any thread count and any cache size.
//
// Threading contract: batches are submitted from one dispatcher thread at a
// time (the engine is the concurrency). Workers park on a condition variable
// between batches and run whatever shard function the dispatcher published;
// the pool is joined on destruction. The two locking domains are annotated
// for clang's -Wthread-safety (see common/thread_annotations.h): pool state
// under mu_, the live epoch pointer under epoch_mu_, and the two are never
// held together. Per-worker state (cache shards, epoch tags, shard_index_)
// is single-owner by the batch protocol — outside the annotations' reach,
// covered by the tsan.* stress shard instead.
//
// Epochs: location state is served through LocationEpoch bundles. apply()
// swaps the current epoch atomically (it may be called from a maintenance
// thread while a batch is in flight): every batch pins the epoch pointer it
// started with, so in-flight locate queries keep answering from the old
// epoch, and each worker's locate LRU shard is cleared the first time that
// worker serves the new epoch — a cached pre-mutation result is never
// served across an epoch boundary.
//
// Telemetry: every serving event is recorded into a sharded
// MetricsRegistry (telemetry/metrics.h; ron_engine_* names) — per-query
// latency histograms, per-shard LRU hit/miss counters, epoch-swap events
// with swap-duration and lock hold-time histograms, and hop/stretch
// distributions checked against location_hop_bound. Recording is lock-free
// (worker w writes only shard w) and compiled out entirely under
// -DRON_TELEMETRY=OFF; the lifetime totals() atomics stay live regardless.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "labeling/distance_labels.h"
#include "location/location_service.h"
#include "oracle/lru.h"
#include "telemetry/clock.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace ron {

/// One distance query: (source, target) node ids.
using QueryPair = std::pair<NodeId, NodeId>;

/// One location query: (querier node, published object id).
using LocateQuery = std::pair<NodeId, ObjectId>;

/// `count` uniform random query pairs over [0, n) — the shared synthetic
/// workload generator of the QPS bench, the CLI's bench subcommand and the
/// engine tests.
std::vector<QueryPair> random_query_pairs(std::size_t count, std::size_t n,
                                          Rng& rng);

struct OracleOptions {
  /// Worker threads; 0 = one per hardware core.
  unsigned num_threads = 1;
  /// LRU result-cache entries across all worker shards, per query kind
  /// (estimate and locate caches are separate); 0 disables caching.
  std::size_t cache_capacity = 0;
  /// Timing source for batch stats and latency histograms (borrowed, must
  /// outlive the engine); null = Clock::real(). Tests inject a FakeClock
  /// for deterministic timings.
  const Clock* clock = nullptr;
  /// Sampled locate ring-walk traces land here when non-null (borrowed,
  /// must outlive the engine). Only cache-miss walks are offered to the
  /// sink; its sample_every does the thinning.
  TraceSink* trace_sink = nullptr;
};

/// Measurements of one estimate_batch/locate_batch call.
struct BatchStats {
  std::size_t queries = 0;
  double seconds = 0.0;
  double qps = 0.0;  // queries / seconds
  std::size_t cache_hits = 0;
};

/// Running totals across the engine's lifetime (both query kinds).
/// Returned by value from totals(): the underlying counters are relaxed
/// atomics written per batch, so a snapshot taken while batches run is a
/// consistent-enough monitoring read, never a data race.
struct EngineTotals {
  std::size_t batches = 0;
  std::size_t queries = 0;
  double seconds = 0.0;  // summed batch wall time ("busy seconds")
  std::size_t cache_hits = 0;
};

/// One immutable generation of location-serving state. The shared_ptrs keep
/// the rings/directory alive exactly as long as any batch (or the engine)
/// still points at this epoch; `service` must be built over those same
/// objects (and over a ProximityIndex that outlives every epoch — epochs
/// share the metric, churn only rewrites overlay and directory state).
/// The churn subsystem's OverlayMutator::commit() is the canonical factory.
struct LocationEpoch {
  /// Monotonically increasing generation tag; apply() requires each
  /// applied id to exceed the previous one so per-worker cache
  /// invalidation can key off it.
  std::uint64_t id = 0;
  std::shared_ptr<const RingsOfNeighbors> rings;      // may be null (legacy)
  std::shared_ptr<const ObjectDirectory> directory;   // may be null (legacy)
  std::shared_ptr<const LocationService> service;     // required
};

class OracleEngine {
 public:
  /// Distance-estimate serving from a loaded labeling.
  explicit OracleEngine(DistanceLabeling labeling, OracleOptions opts = {});

  /// Locate-only serving: no labeling, queries answered via `svc` (borrowed;
  /// must outlive the engine). `locate_opts` is fixed per engine so cached
  /// results can never reflect a different walk configuration.
  OracleEngine(const LocationService& svc, OracleOptions opts,
               LocateOptions locate_opts = {});

  /// Locate-only serving from an owned epoch (the dynamic-overlay entry
  /// point: OverlayMutator::commit() -> this -> apply() for later epochs).
  OracleEngine(std::shared_ptr<const LocationEpoch> epoch, OracleOptions opts,
               LocateOptions locate_opts = {});

  ~OracleEngine() RON_EXCLUDES(mu_, epoch_mu_);

  OracleEngine(const OracleEngine&) = delete;
  OracleEngine& operator=(const OracleEngine&) = delete;

  /// Node count of whichever snapshot state is present (labeling wins when
  /// both are attached; attach_location enforces they agree).
  std::size_t n() const;
  unsigned num_workers() const { return workers_; }

  bool has_labeling() const { return labeling_.has_value(); }
  const DistanceLabeling& labeling() const;

  /// Attaches an object-location service to an estimate-serving engine
  /// (borrowed; must outlive the engine, node count must match the
  /// labeling's). The service's directory must not be mutated while
  /// attached — locate results are cached. Internally this wraps `svc` in a
  /// non-owning epoch with id 0; apply() can later swap it for owned ones.
  void attach_location(const LocationService& svc,
                       LocateOptions locate_opts = {})
      RON_EXCLUDES(epoch_mu_);

  /// Swaps the serving epoch. Requires a complete epoch (non-null service)
  /// over the same node count, with an id STRICTLY GREATER than the current
  /// epoch's (worker cache tags hold previously served ids, so a reused id
  /// — e.g. from a second mutator numbering its own commits from 1 — could
  /// match a stale tag). Safe to call from a maintenance thread while
  /// batches run:
  /// in-flight batches finish against the epoch they pinned at submission,
  /// and each worker's locate cache shard is invalidated lazily when it
  /// first serves the new epoch. The fixed locate_opts are kept.
  void apply(std::shared_ptr<const LocationEpoch> epoch)
      RON_EXCLUDES(epoch_mu_);

  bool has_location() const { return current_epoch() != nullptr; }
  const LocationService& location() const;

  /// The live epoch (null when no location state is attached). Batches pin
  /// their own copy, so this is a peek, not a serving handle.
  std::shared_ptr<const LocationEpoch> current_epoch() const
      RON_EXCLUDES(epoch_mu_);

  /// Single query (validated); computed inline, bypassing pool and cache.
  Dist estimate(NodeId u, NodeId v) const;
  LocateResult locate(NodeId querier, ObjectId obj) const;

  /// Answers every pair; results[i] corresponds to pairs[i]. Node ids are
  /// validated up front (throws ron::Error). Updates last_batch_stats().
  std::vector<Dist> estimate_batch(std::span<const QueryPair> pairs);

  /// Answers every locate query; results[i] corresponds to queries[i].
  /// Querier/object ids are validated up front (throws ron::Error). Updates
  /// last_batch_stats().
  std::vector<LocateResult> locate_batch(std::span<const LocateQuery> queries);

  /// Stats of the most recent batch. Dispatcher-owned: call from the
  /// thread that submitted the batch (concurrent readers should use
  /// totals() or metrics() instead).
  const BatchStats& last_batch_stats() const { return last_; }
  /// Lifetime totals, safe to read from any thread at any time. Always
  /// live, even in RON_TELEMETRY=OFF builds.
  EngineTotals totals() const;

  /// The engine's metric registry (telemetry/metrics.h): per-query latency
  /// and lock hold-time histograms, cache hit/miss and epoch-swap
  /// counters, hop/stretch distributions — all ron_engine_*-prefixed.
  /// Scraping (to_json / to_prometheus) is safe while batches run.
  const MetricsRegistry& metrics() const { return *metrics_; }

 private:
  /// Estimates are symmetric, so their key is the unordered pair.
  static std::uint64_t pair_key(NodeId u, NodeId v) {
    const NodeId lo = u < v ? u : v;
    const NodeId hi = u < v ? v : u;
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }

  /// Locates are not symmetric: (querier, object id), distinct key spaces
  /// because the caches are separate shards.
  static std::uint64_t locate_key(NodeId querier, ObjectId obj) {
    return (static_cast<std::uint64_t>(querier) << 32) | obj;
  }

  /// Pool/cache/shard setup shared by the public constructors; snapshot
  /// state (labeling_ / epoch_) is attached afterwards by each of them.
  explicit OracleEngine(OracleOptions opts);

  void start_pool();
  void worker_main(unsigned w) RON_EXCLUDES(mu_);
  /// Shards `count` queries by `source_of(i) % workers`, publishes
  /// `shard_fn` to the pool (or runs it inline for one worker), rethrows
  /// the first worker error, and accounts stats for `count` queries.
  template <typename SourceOf>
  void run_batch(std::size_t count, SourceOf&& source_of,
                 const std::function<void(unsigned)>& shard_fn)
      RON_EXCLUDES(mu_);
  void process_estimate_shard(unsigned w, std::span<const QueryPair> pairs,
                              std::vector<Dist>& results);
  void process_locate_shard(unsigned w, const LocationEpoch& epoch,
                            std::span<const LocateQuery> queries,
                            std::vector<LocateResult>& results);
  std::size_t cache_hits() const;
  /// Per-query timestamp for the shard loops: the inline steady_clock read
  /// when the engine runs on the real clock (the common case), virtual
  /// dispatch for injected test clocks.
  std::uint64_t query_now_ns() const {
    return clock_is_real_ ? real_now_ns() : clock_->now_ns();
  }
  void set_epoch(std::shared_ptr<const LocationEpoch> epoch,
                 bool require_new_id) RON_EXCLUDES(epoch_mu_);
  /// Registers every ron_engine_* metric and caches the handles below.
  void init_metrics();

  std::optional<DistanceLabeling> labeling_;
  LocateOptions locate_opts_;
  unsigned workers_ = 1;
  std::size_t cache_capacity_per_shard_ = 0;
  // Per-worker single-owner state: shard w is touched only by worker w
  // while a batch runs, and only by the dispatcher between batches (the
  // batch mutex+condvar protocol orders the handoff). That ownership
  // discipline cannot be spelled as a RON_GUARDED_BY — it is exercised
  // under TSan by the tsan.* stress shard instead.
  std::vector<LruShard<Dist>> estimate_cache_;        // one shard per worker
  std::vector<LruShard<LocateResult>> locate_cache_;  // one shard per worker
  // Epoch id each locate shard last served; a worker clears its shard when
  // the pinned batch epoch differs (only that worker touches the shard, so
  // the lazy clear is race-free).
  std::vector<std::uint64_t> locate_cache_epoch_;
  // The live epoch; guarded by its own mutex so apply() from a maintenance
  // thread never contends with the worker pool's batch mutex. Never hold
  // both: every epoch_mu_ critical section is a leaf.
  mutable Mutex epoch_mu_;
  std::shared_ptr<const LocationEpoch> epoch_ RON_GUARDED_BY(epoch_mu_);

  // Pool state (guarded by mu_). Batches publish the shard function, bump
  // generation_ and wait for remaining_ to hit zero.
  Mutex mu_;
  CondVar cv_start_;
  CondVar cv_done_;
  std::vector<std::thread> pool_;  // written before the pool runs, then const
  bool stop_ RON_GUARDED_BY(mu_) = false;
  std::uint64_t generation_ RON_GUARDED_BY(mu_) = 0;
  unsigned remaining_ RON_GUARDED_BY(mu_) = 0;
  // First exception a worker hit this batch; rethrown to the dispatcher so
  // a malformed query/snapshot surfaces as ron::Error, never std::terminate.
  std::exception_ptr batch_error_ RON_GUARDED_BY(mu_);
  std::function<void(unsigned)> batch_fn_ RON_GUARDED_BY(mu_);
  // Built by the dispatcher before a batch is published, read by workers
  // during it (ordered by the mu_/cv protocol, like the shards above).
  std::vector<std::vector<std::uint32_t>> shard_index_;  // per worker

  // Dispatcher-owned, like shard_index_ (see last_batch_stats()).
  BatchStats last_;

  // Lifetime totals as relaxed atomics: written once per batch by the
  // dispatcher, readable from any thread (the satellite fix for the
  // previously annotation-free EngineTotals member). Always recorded,
  // independent of RON_TELEMETRY.
  std::atomic<std::uint64_t> total_batches_{0};
  std::atomic<std::uint64_t> total_queries_{0};
  std::atomic<std::uint64_t> total_busy_ns_{0};
  std::atomic<std::uint64_t> total_cache_hits_{0};

  // Telemetry. The registry has workers_+1 shards: shard w belongs to
  // worker w during a batch; shard workers_ is shared by the dispatcher
  // and any maintenance thread (cells are atomics, so sharing a shard is
  // slower under contention, never incorrect). Metric handles are cached
  // raw pointers into the registry (stable for its lifetime) so the hot
  // path never does a name lookup.
  const Clock* clock_ = nullptr;  // never null after construction
  // True when clock_ is Clock::real(): the per-query stamps in the shard
  // loops then take the inline real_now_ns() path instead of a virtual
  // call (one perfectly-predicted branch).
  bool clock_is_real_ = false;
  TraceSink* trace_sink_ = nullptr;
  std::unique_ptr<MetricsRegistry> metrics_;
  Histogram* m_estimate_latency_ = nullptr;
  Histogram* m_locate_latency_ = nullptr;
  Histogram* m_estimate_batch_seconds_ = nullptr;
  Histogram* m_locate_batch_seconds_ = nullptr;
  Counter* m_estimate_cache_hits_ = nullptr;
  Counter* m_estimate_cache_misses_ = nullptr;
  Counter* m_locate_cache_hits_ = nullptr;
  Counter* m_locate_cache_misses_ = nullptr;
  Counter* m_epoch_swaps_ = nullptr;
  Histogram* m_epoch_swap_seconds_ = nullptr;
  Histogram* m_epoch_mu_hold_seconds_ = nullptr;
  Histogram* m_mu_hold_seconds_ = nullptr;
  Histogram* m_locate_hops_ = nullptr;
  Histogram* m_locate_route_stretch_ = nullptr;
  Counter* m_hop_bound_violations_ = nullptr;
  Counter* m_locate_not_found_ = nullptr;
  Counter* m_cache_invalidations_ = nullptr;
  Gauge* m_hop_bound_ = nullptr;
};

}  // namespace ron
