#include "oracle/snapshot.h"

#include <cmath>
#include <cstring>
#include <fstream>

#include "oracle/wire.h"

namespace ron {

namespace {

// Container framing (magic, header layout) is shared with the streaming
// wire classes — see kSnapshotMagic / kSnapshotHeaderBytes in wire.h.
constexpr std::size_t kHeaderBytes = kSnapshotHeaderBytes;

bool kind_is_known(std::uint32_t k) {
  return k >= static_cast<std::uint32_t>(SnapshotKind::kRings) &&
         k <= static_cast<std::uint32_t>(SnapshotKind::kChurnBundle);
}

void check_writable_version(std::uint32_t version) {
  RON_CHECK(version == kSnapshotVersion || version == kSnapshotVersionV1,
            "snapshot: cannot write format version " << version);
}

/// The v1 writer gate must never lose recipe information silently: every
/// spec field the legacy format cannot carry has to be at its default (for
/// any genuinely-v1 artifact it is). Otherwise a downgraded file would
/// load with a different recipe than it was built from — for a directory
/// that means locate rebuilds the wrong overlay with no error anywhere.
void check_v1_representable(const ScenarioSpec& spec, bool keeps_family,
                            bool keeps_delta, bool keeps_overlay_seed,
                            const char* what) {
  const ScenarioSpec dflt;
  const bool ok =
      (keeps_family || spec.family.empty()) &&
      (keeps_delta || spec.delta == dflt.delta) &&
      (keeps_overlay_seed || spec.overlay_seed == dflt.overlay_seed) &&
      spec.c_x == dflt.c_x && spec.c_y == dflt.c_y &&
      spec.with_x == dflt.with_x && spec.params.empty() &&
      spec.churn_ops == dflt.churn_ops && spec.churn_seed == dflt.churn_seed;
  RON_CHECK(ok, "snapshot: v1 " << what << " format cannot carry this "
                "scenario spec (" << spec.to_string() << ") — non-default "
                "fields would be silently dropped; write v2 or reset them");
}

/// When the spec names a family it is a real recipe and must agree with the
/// artifact's node count; an empty family ("unknown provenance") may keep
/// its default n.
void check_spec_n(const ScenarioSpec& spec, std::size_t artifact_n,
                  const char* what) {
  RON_CHECK(spec.family.empty() || spec.n == artifact_n,
            "snapshot: scenario spec n=" << spec.n << " != " << what
                                         << " n=" << artifact_n);
}

/// v1 checksums cover the payload alone; v2 folds the header's version and
/// kind fields in front, so a bit-flip that relabels a v2 file (downgrades
/// its version or swaps its kind while leaving the payload intact) fails
/// the checksum instead of gambling on the wrong parser rejecting it.
std::uint64_t snapshot_checksum(std::uint32_t version, SnapshotKind kind,
                                std::span<const std::uint8_t> payload) {
  if (version < kSnapshotVersion) return fnv1a64(payload);
  WireWriter prefix;
  prefix.u32(version);
  prefix.u32(static_cast<std::uint32_t>(kind));
  return fnv1a64_continue(fnv1a64(prefix.bytes()), payload);
}

/// Initial FNV state for the streaming wire classes, mirroring
/// snapshot_checksum's two domains: v2 folds the version/kind prefix in
/// front of the payload, v1 starts at the basis.
std::uint64_t stream_checksum_seed(std::uint32_t version, SnapshotKind kind) {
  if (version < kSnapshotVersion) return kFnv1a64Basis;
  WireWriter prefix;
  prefix.u32(version);
  prefix.u32(static_cast<std::uint32_t>(kind));
  return fnv1a64(prefix.bytes());
}

/// Validates a freshly-opened streaming reader the way read_snapshot
/// validates a loaded file (known version, known kind) and seeds its
/// checksum domain. The checksum itself is verified by expect_done() at the
/// end of the parse — the reader never sees the whole payload at once —
/// and read_count bounds any allocation a corrupt prefix could request in
/// the meantime, so corruption still surfaces as ron::Error before a
/// loaded object escapes.
SnapshotInfo open_stream_section(WireStreamReader& r,
                                 const std::string& path) {
  const WireStreamReader::Header& h = r.header();
  SnapshotInfo info;
  info.version = h.version;
  RON_CHECK(h.version == kSnapshotVersion || h.version == kSnapshotVersionV1,
            "snapshot: " << path << " has format version " << h.version
                         << ", this build reads " << kSnapshotVersionV1
                         << " and " << kSnapshotVersion);
  RON_CHECK(kind_is_known(h.kind),
            "snapshot: " << path << " has unknown section kind " << h.kind);
  info.kind = static_cast<SnapshotKind>(h.kind);
  info.payload_bytes = h.payload_bytes;
  info.checksum = h.checksum;
  r.seed_checksum(stream_checksum_seed(h.version, info.kind));
  return info;
}

SnapshotInfo open_stream_section_of_kind(WireStreamReader& r,
                                         const std::string& path,
                                         SnapshotKind want) {
  SnapshotInfo info = open_stream_section(r, path);
  RON_CHECK(info.kind == want,
            "snapshot: " << path << " holds section kind "
                         << static_cast<std::uint32_t>(info.kind)
                         << ", expected "
                         << static_cast<std::uint32_t>(want));
  return info;
}

void write_snapshot(SnapshotKind kind, const WireWriter& payload,
                    const std::string& path, std::uint32_t version) {
  WireWriter header;
  for (std::uint8_t b : kSnapshotMagic) header.u8(b);
  header.u32(version);
  header.u32(static_cast<std::uint32_t>(kind));
  header.u64(payload.size());
  header.u64(snapshot_checksum(version, kind, payload.bytes()));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  RON_CHECK(out.good(), "snapshot: cannot open " << path << " for writing");
  write_stream_bytes(out, header.bytes(), "header");
  write_stream_bytes(out, payload.bytes(), "payload");
  out.flush();
  RON_CHECK(out.good(), "snapshot: short write to " << path);
}

/// Reads and fully validates the file: magic, known version, known kind,
/// exact payload length (truncation AND trailing bytes) and checksum.
/// Returns the whole file's bytes — the payload is the subspan after
/// kHeaderBytes (payload_view below), kept in place to avoid doubling peak
/// memory on large snapshots. Fills `info`.
std::vector<std::uint8_t> read_snapshot(const std::string& path,
                                        SnapshotInfo& info) {
  std::ifstream in(path, std::ios::binary);
  RON_CHECK(in.good(), "snapshot: cannot open " << path);
  // Single sized read; istreambuf_iterator would go byte-at-a-time, which
  // matters at serving-snapshot sizes.
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  RON_CHECK(size >= 0, "snapshot: cannot stat " << path);
  in.seekg(0, std::ios::beg);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0) read_stream_bytes(in, bytes, path.c_str());
  RON_CHECK(bytes.size() >= kHeaderBytes,
            "snapshot: " << path << " is " << bytes.size()
                         << " bytes, smaller than the header");
  RON_CHECK(std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) == 0,
            "snapshot: " << path << " has wrong magic (not a RON snapshot)");
  WireReader header(std::span(bytes.data() + sizeof(kSnapshotMagic),
                              kHeaderBytes - sizeof(kSnapshotMagic)));
  info.version = header.u32();
  RON_CHECK(info.version == kSnapshotVersion ||
                info.version == kSnapshotVersionV1,
            "snapshot: " << path << " has format version " << info.version
                         << ", this build reads " << kSnapshotVersionV1
                         << " and " << kSnapshotVersion);
  const std::uint32_t kind = header.u32();
  RON_CHECK(kind_is_known(kind),
            "snapshot: " << path << " has unknown section kind " << kind);
  info.kind = static_cast<SnapshotKind>(kind);
  info.payload_bytes = header.u64();
  const std::uint64_t want_sum = header.u64();
  RON_CHECK(bytes.size() - kHeaderBytes == info.payload_bytes,
            "snapshot: " << path << " payload is "
                         << bytes.size() - kHeaderBytes
                         << " bytes, header promises " << info.payload_bytes
                         << " (truncated or trailing garbage)");
  info.checksum = snapshot_checksum(
      info.version, info.kind,
      std::span<const std::uint8_t>(bytes).subspan(kHeaderBytes));
  RON_CHECK(info.checksum == want_sum,
            "snapshot: " << path << " checksum mismatch (corrupt payload)");
  return bytes;
}

std::span<const std::uint8_t> payload_view(
    const std::vector<std::uint8_t>& file) {
  return std::span<const std::uint8_t>(file).subspan(kHeaderBytes);
}

std::vector<std::uint8_t> read_snapshot_of_kind(const std::string& path,
                                                SnapshotKind want,
                                                SnapshotInfo& info) {
  std::vector<std::uint8_t> file = read_snapshot(path, info);
  RON_CHECK(info.kind == want,
            "snapshot: " << path << " holds section kind "
                         << static_cast<std::uint32_t>(info.kind)
                         << ", expected "
                         << static_cast<std::uint32_t>(want));
  return file;
}

/// Payload prefix shared by every v2 section: the embedded scenario. v1
/// sections have no prefix; the loader synthesizes an empty-family spec
/// (kOracle/kObjectDirectory override it from their legacy metas).
template <typename Reader>
ScenarioSpec read_spec_prefix(Reader& r, std::uint32_t version) {
  return version >= kSnapshotVersion ? read_spec(r) : ScenarioSpec{};
}

template <typename Writer>
void write_node_list(Writer& w, std::span<const NodeId> xs) {
  w.u64(xs.size());
  for (NodeId v : xs) w.u32(v);
}

/// Node list with every id validated against n (kInvalidNode rejected).
template <typename Reader>
std::vector<NodeId> read_node_list(Reader& r, std::size_t n,
                                   const char* what) {
  const std::uint64_t count = r.read_count(sizeof(NodeId), what);
  std::vector<NodeId> xs;
  xs.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const NodeId v = r.u32();
    RON_CHECK(v < n, "snapshot: " << what << " id " << v
                                  << " out of range (n=" << n << ")");
    xs.push_back(v);
  }
  return xs;
}

std::uint32_t int_to_u32(int v) {
  return static_cast<std::uint32_t>(static_cast<std::int32_t>(v));
}
int u32_to_int(std::uint32_t v) {
  return static_cast<int>(static_cast<std::int32_t>(v));
}

// The labeling payload is shared between the kDistanceLabeling section and
// the kOracle bundle.
void write_labeling_payload(WireWriter& w, const DistanceLabeling& dls) {
  const DistanceCodec& codec = dls.codec();
  w.u32(static_cast<std::uint32_t>(codec.mantissa_bits()));
  w.u32(static_cast<std::uint32_t>(codec.exponent_bits()));
  w.u32(int_to_u32(codec.min_exp()));
  w.u32(int_to_u32(codec.max_exp()));
  w.f64(codec.max_relative_error());
  w.u64(dls.psi_bits());
  w.u64(dls.id_bits());
  w.u64(dls.n());
  for (NodeId u = 0; u < dls.n(); ++u) {
    const DlsLabel& lab = dls.label(u);
    w.u32(lab.id);
    w.u64(lab.host_dist.size());
    for (Dist d : lab.host_dist) w.f64(d);
    w.u64(lab.zeta.size());
    for (const auto& zeta : lab.zeta) {
      w.u64(zeta.size());
      for (const DlsTriple& t : zeta) {
        w.u32(t.x);
        w.u32(t.y);
        w.u32(t.z);
      }
    }
    w.u32(lab.zoom0);
    w.u64(lab.zoom.size());
    for (std::uint32_t y : lab.zoom) w.u32(y);
  }
}

DistanceLabeling read_labeling_payload(WireReader& r) {
  const int mantissa_bits = u32_to_int(r.u32());
  const int exponent_bits = u32_to_int(r.u32());
  const int min_exp = u32_to_int(r.u32());
  const int max_exp = u32_to_int(r.u32());
  const double rel_error = r.f64();
  DistanceCodec codec = DistanceCodec::from_parts(
      mantissa_bits, exponent_bits, min_exp, max_exp, rel_error);
  const std::uint64_t psi_bits = r.u64();
  const std::uint64_t id_bits = r.u64();
  // A label is at least id + host count + zeta count + zoom0 + zoom count.
  const std::uint64_t n = r.read_count(4 + 8 + 8 + 4 + 8, "label");
  RON_CHECK(n >= 1, "snapshot: labeling with zero nodes");
  std::vector<DlsLabel> labels(static_cast<std::size_t>(n));
  for (std::uint64_t u = 0; u < n; ++u) {
    DlsLabel& lab = labels[static_cast<std::size_t>(u)];
    lab.id = r.u32();
    const std::uint64_t hosts = r.read_count(sizeof(double), "host distance");
    lab.host_dist.resize(static_cast<std::size_t>(hosts));
    for (auto& d : lab.host_dist) {
      d = r.f64();
      RON_CHECK(std::isfinite(d) && d >= 0.0,
                "snapshot: host distance not finite/non-negative");
    }
    const std::uint64_t levels = r.read_count(sizeof(std::uint64_t), "zeta");
    lab.zeta.resize(static_cast<std::size_t>(levels));
    for (auto& zeta : lab.zeta) {
      const std::uint64_t triples =
          r.read_count(3 * sizeof(std::uint32_t), "zeta triple");
      zeta.resize(static_cast<std::size_t>(triples));
      for (DlsTriple& t : zeta) {
        t.x = r.u32();
        t.y = r.u32();
        t.z = r.u32();
      }
    }
    lab.zoom0 = r.u32();
    const std::uint64_t zooms =
        r.read_count(sizeof(std::uint32_t), "zoom entry");
    lab.zoom.resize(static_cast<std::size_t>(zooms));
    for (auto& y : lab.zoom) y = r.u32();
  }
  // from_parts re-validates ids, zoom0 and zeta indices against host sizes.
  return DistanceLabeling::from_parts(codec, psi_bits, id_bits,
                                      std::move(labels));
}

// --- legacy (v1) meta blocks ----------------------------------------------
//
// Version 1 carried per-kind provenance structs instead of a spec. The
// loaders translate them into an equivalent ScenarioSpec; the version-gated
// writers translate back so v1 bytes stay reproducible bit-for-bit.

void write_oracle_meta_v1(WireWriter& w, const ScenarioSpec& spec,
                          const std::string& metric_name) {
  w.str(metric_name);
  w.u64(spec.n);
  w.u64(spec.seed);
  w.f64(spec.delta);
}

void read_oracle_meta_v1(WireReader& r, ScenarioSpec& spec,
                         std::string& metric_name) {
  metric_name = r.str();
  spec.family.clear();  // v1 oracle bundles never named their family
  spec.n = r.u64();
  RON_CHECK(spec.n >= 1, "snapshot: oracle meta n must be >= 1");
  spec.seed = r.u64();
  spec.delta = r.f64();
  RON_CHECK(std::isfinite(spec.delta) && spec.delta > 0.0 && spec.delta < 1.0,
            "snapshot: oracle meta delta " << spec.delta << " outside (0,1)");
}

template <typename Writer>
void write_directory_meta_v1(Writer& w, const ScenarioSpec& spec) {
  w.str(spec.family);
  w.u64(spec.n);
  w.u64(spec.seed);
  w.u64(spec.overlay_seed);
}

template <typename Reader>
ScenarioSpec read_directory_meta_v1(Reader& r) {
  // v1 directories always rebuilt their overlay with the default ring
  // profile and delta, so the synthesized spec's defaults are exact.
  ScenarioSpec spec;
  spec.family = r.str();
  RON_CHECK(!spec.family.empty() && spec.family.size() <= 64,
            "snapshot: directory metric kind of " << spec.family.size()
                                                  << " bytes");
  spec.n = r.u64();
  RON_CHECK(spec.n >= 1 && spec.n <= kInvalidNode,
            "snapshot: directory node count " << spec.n);
  spec.seed = r.u64();
  spec.overlay_seed = r.u64();
  return spec;
}

template <typename Writer>
void write_directory_payload(Writer& w, const ObjectDirectory& dir) {
  w.u64(dir.num_objects());
  for (ObjectId obj = 0; obj < dir.num_objects(); ++obj) {
    w.str(dir.name(obj));
    write_node_list(w, dir.holders(obj));
  }
}

template <typename Reader>
ObjectDirectory read_directory_payload(Reader& r, std::size_t n) {
  ObjectDirectory dir(n);
  // Every object costs at least a name length + a holder count.
  const std::uint64_t objects =
      r.read_count(2 * sizeof(std::uint64_t), "object");
  for (std::uint64_t i = 0; i < objects; ++i) {
    const std::string name = r.str();
    RON_CHECK(!name.empty(), "snapshot: empty object name");
    RON_CHECK(dir.find(name) == kInvalidObject,
              "snapshot: duplicate object name '" << name << "'");
    // declare-then-publish keeps fully-unpublished objects (zero holders)
    // loadable; publish re-sorts and dedups, so holder accounting is
    // recomputed rather than trusted.
    dir.declare(name);
    for (NodeId v : read_node_list(r, n, "holder")) {
      dir.publish(name, v);
    }
  }
  return dir;
}

}  // namespace

SnapshotInfo inspect_snapshot(const std::string& path) {
  // Streaming: verifies length and checksum in one bounded-memory pass,
  // so inspecting a multi-GB snapshot never loads it.
  WireStreamReader r(path);
  const SnapshotInfo info = open_stream_section(r, path);
  r.drain();
  r.expect_done();
  return info;
}

std::uint32_t peek_snapshot_kind(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  // Layout written by write_snapshot: magic[8], version u32, kind u32.
  std::uint8_t hdr[sizeof(kSnapshotMagic) + 2 * sizeof(std::uint32_t)];
  if (read_stream_prefix(in, hdr) != sizeof(hdr)) return 0;
  if (std::memcmp(hdr, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) return 0;
  WireReader rd(std::span(hdr + sizeof(kSnapshotMagic), 2 * sizeof(std::uint32_t)));
  rd.u32();  // version (the caller routes on kind alone)
  return rd.u32();
}

void save_rings(const RingsOfNeighbors& rings, const std::string& path,
                const ScenarioSpec& spec, std::uint32_t version) {
  check_writable_version(version);
  check_spec_n(spec, rings.n(), "rings");
  // Streaming writer: the rings section is the big one (a million-node
  // overlay is multiple GB), so the payload goes to disk a chunk at a time
  // instead of being materialized.
  WireStreamWriter w(path, version,
                     static_cast<std::uint32_t>(SnapshotKind::kRings),
                     stream_checksum_seed(version, SnapshotKind::kRings));
  if (version >= kSnapshotVersion) {
    write_spec(w, spec);
  } else {
    check_v1_representable(spec, false, false, false, "rings");
  }
  w.u64(rings.n());
  // Visitation accessors instead of the rings() span, so sealed (compact)
  // and mutable containers write byte-identical snapshots.
  std::vector<NodeId> members;
  for (NodeId u = 0; u < rings.n(); ++u) {
    const std::size_t nr = rings.num_rings(u);
    w.u64(nr);
    for (std::size_t k = 0; k < nr; ++k) {
      w.f64(rings.ring_scale(u, k));
      members.clear();
      rings.visit_ring(u, k, [&](NodeId v) { members.push_back(v); });
      write_node_list(w, members);
    }
  }
  w.finish();
}

RingsOfNeighbors load_rings(const std::string& path, ScenarioSpec* spec,
                            SnapshotInfo* info) {
  WireStreamReader r(path);
  const SnapshotInfo local =
      open_stream_section_of_kind(r, path, SnapshotKind::kRings);
  if (info != nullptr) *info = local;
  const ScenarioSpec embedded = read_spec_prefix(r, local.version);
  if (spec != nullptr) *spec = embedded;
  const std::uint64_t n = r.read_count(sizeof(std::uint64_t), "node");
  RON_CHECK(n >= 1 && n <= kInvalidNode, "snapshot: rings node count " << n);
  RingsOfNeighbors rings(static_cast<std::size_t>(n));
  for (std::uint64_t u = 0; u < n; ++u) {
    const std::uint64_t num_rings =
        r.read_count(sizeof(double) + sizeof(std::uint64_t), "ring");
    for (std::uint64_t k = 0; k < num_rings; ++k) {
      Ring ring;
      ring.scale = r.f64();
      ring.members =
          read_node_list(r, static_cast<std::size_t>(n), "ring member");
      // add_ring re-sorts, dedups and rebuilds the degree caches, so the
      // loaded accounting is recomputed rather than trusted.
      rings.add_ring(static_cast<NodeId>(u), std::move(ring));
    }
  }
  r.expect_done();
  check_spec_n(embedded, rings.n(), "rings");
  return rings;
}

void save_neighbor_system(const NeighborSystem& sys, const std::string& path,
                          const ScenarioSpec& spec, std::uint32_t version) {
  check_writable_version(version);
  const std::size_t n = sys.prox().n();
  check_spec_n(spec, n, "neighbor system");
  const int levels = sys.num_levels();
  const int zscales = sys.num_z_scales();
  WireWriter w;
  if (version >= kSnapshotVersion) {
    write_spec(w, spec);
  } else {
    // delta lives in the neighbor-system payload itself, so only the spec's
    // other fields would be lost.
    check_v1_representable(spec, false, true, false, "neighbor system");
  }
  w.u64(n);
  w.f64(sys.delta());
  w.f64(sys.profile().y_ball_factor);
  w.f64(sys.profile().y_net_divisor);
  w.f64(sys.profile().z_net_divisor);
  w.u32(static_cast<std::uint32_t>(levels));
  w.u32(static_cast<std::uint32_t>(zscales));
  for (NodeId u = 0; u < n; ++u) {
    for (int i = 0; i < levels; ++i) {
      w.f64(sys.r(u, i));
      w.u32(sys.nearest_x(u, i));  // may be kInvalidNode
      w.u32(sys.f(u, i));
      w.u32(int_to_u32(sys.y_level(u, i)));
      write_node_list(w, sys.X(u, i));
      write_node_list(w, sys.Y(u, i));
    }
    for (int j = 1; j <= zscales; ++j) write_node_list(w, sys.Z(u, j));
    write_node_list(w, sys.Z_all(u));
    write_node_list(w, sys.X_all(u));
    write_node_list(w, sys.host_set(u));
    write_node_list(w, sys.virtual_set(u));
  }
  write_snapshot(SnapshotKind::kNeighborSystem, w, path, version);
}

NeighborSystemSnapshot load_neighbor_system(const std::string& path,
                                            ScenarioSpec* spec,
                                            SnapshotInfo* info) {
  SnapshotInfo local;
  const std::vector<std::uint8_t> file =
      read_snapshot_of_kind(path, SnapshotKind::kNeighborSystem, local);
  if (info != nullptr) *info = local;
  WireReader r(payload_view(file));
  const ScenarioSpec embedded = read_spec_prefix(r, local.version);
  if (spec != nullptr) *spec = embedded;
  NeighborSystemSnapshot s;
  const std::uint64_t n = r.read_count(sizeof(std::uint64_t), "node");
  RON_CHECK(n >= 1 && n <= kInvalidNode,
            "snapshot: neighbor system node count " << n);
  s.n_ = static_cast<std::size_t>(n);
  s.delta_ = r.f64();
  RON_CHECK(s.delta_ > 0.0 && s.delta_ < 1.0,
            "snapshot: delta " << s.delta_ << " outside (0,1)");
  s.profile_.y_ball_factor = r.f64();
  s.profile_.y_net_divisor = r.f64();
  s.profile_.z_net_divisor = r.f64();
  s.num_levels_ = u32_to_int(r.u32());
  s.num_z_scales_ = u32_to_int(r.u32());
  RON_CHECK(s.num_levels_ >= 1 && s.num_levels_ <= 64,
            "snapshot: level count " << s.num_levels_);
  RON_CHECK(s.num_z_scales_ >= 1 && s.num_z_scales_ <= 4096,
            "snapshot: z-scale count " << s.num_z_scales_);
  const std::size_t per_level = s.n_ * static_cast<std::size_t>(s.num_levels_);
  s.r_.reserve(per_level);
  s.nearest_x_.reserve(per_level);
  s.f_.reserve(per_level);
  s.y_level_.reserve(per_level);
  s.x_.reserve(per_level);
  s.y_.reserve(per_level);
  for (std::size_t u = 0; u < s.n_; ++u) {
    for (int i = 0; i < s.num_levels_; ++i) {
      const Dist radius = r.f64();
      RON_CHECK(std::isfinite(radius) && radius >= 0.0,
                "snapshot: level radius not finite/non-negative");
      s.r_.push_back(radius);
      const NodeId nearest = r.u32();
      RON_CHECK(nearest < s.n_ || nearest == kInvalidNode,
                "snapshot: nearest_x out of range");
      s.nearest_x_.push_back(nearest);
      const NodeId fu = r.u32();
      RON_CHECK(fu < s.n_, "snapshot: zooming node out of range");
      s.f_.push_back(fu);
      const int ylev = u32_to_int(r.u32());
      RON_CHECK(ylev >= 0 && ylev <= 4096, "snapshot: y_level " << ylev);
      s.y_level_.push_back(ylev);
      s.x_.push_back(read_node_list(r, s.n_, "X member"));
      s.y_.push_back(read_node_list(r, s.n_, "Y member"));
    }
    for (int j = 1; j <= s.num_z_scales_; ++j) {
      s.z_.push_back(read_node_list(r, s.n_, "Z member"));
    }
    s.z_all_.push_back(read_node_list(r, s.n_, "Z_all member"));
    s.x_all_.push_back(read_node_list(r, s.n_, "X_all member"));
    s.host_.push_back(read_node_list(r, s.n_, "host member"));
    s.virtual_.push_back(read_node_list(r, s.n_, "virtual member"));
  }
  r.expect_done();
  check_spec_n(embedded, s.n_, "neighbor system");
  return s;
}

void save_labeling(const DistanceLabeling& dls, const std::string& path,
                   const ScenarioSpec& spec, std::uint32_t version) {
  check_writable_version(version);
  check_spec_n(spec, dls.n(), "labeling");
  WireWriter w;
  if (version >= kSnapshotVersion) {
    write_spec(w, spec);
  } else {
    check_v1_representable(spec, false, false, false, "labeling");
  }
  write_labeling_payload(w, dls);
  write_snapshot(SnapshotKind::kDistanceLabeling, w, path, version);
}

DistanceLabeling load_labeling(const std::string& path, ScenarioSpec* spec,
                               SnapshotInfo* info) {
  SnapshotInfo local;
  const std::vector<std::uint8_t> file =
      read_snapshot_of_kind(path, SnapshotKind::kDistanceLabeling, local);
  if (info != nullptr) *info = local;
  WireReader r(payload_view(file));
  const ScenarioSpec embedded = read_spec_prefix(r, local.version);
  if (spec != nullptr) *spec = embedded;
  DistanceLabeling dls = read_labeling_payload(r);
  r.expect_done();
  check_spec_n(embedded, dls.n(), "labeling");
  return dls;
}

void save_oracle(const ScenarioSpec& spec, const std::string& metric_name,
                 const DistanceLabeling& dls, const std::string& path,
                 std::uint32_t version) {
  check_writable_version(version);
  RON_CHECK(spec.n == dls.n(),
            "save_oracle: spec n " << spec.n << " != labeling n " << dls.n());
  WireWriter w;
  if (version >= kSnapshotVersion) {
    write_spec(w, spec);
    w.str(metric_name);
  } else {
    check_v1_representable(spec, false, true, false, "oracle");
    write_oracle_meta_v1(w, spec, metric_name);
  }
  write_labeling_payload(w, dls);
  write_snapshot(SnapshotKind::kOracle, w, path, version);
}

LoadedOracle load_oracle(const std::string& path, SnapshotInfo* info) {
  SnapshotInfo local;
  const std::vector<std::uint8_t> file =
      read_snapshot_of_kind(path, SnapshotKind::kOracle, local);
  if (info != nullptr) *info = local;
  WireReader r(payload_view(file));
  ScenarioSpec spec;
  std::string metric_name;
  if (local.version >= kSnapshotVersion) {
    spec = read_spec(r);
    metric_name = r.str();
  } else {
    read_oracle_meta_v1(r, spec, metric_name);
  }
  DistanceLabeling dls = read_labeling_payload(r);
  r.expect_done();
  RON_CHECK(spec.n == dls.n(), "snapshot: oracle spec n "
                                   << spec.n << " != labeling n "
                                   << dls.n());
  return LoadedOracle{std::move(spec), std::move(metric_name),
                      std::move(dls)};
}

void save_directory(const ScenarioSpec& spec, const ObjectDirectory& dir,
                    const std::string& path, std::uint32_t version) {
  check_writable_version(version);
  RON_CHECK(!spec.family.empty(),
            "save_directory: the scenario spec must name a metric family "
            "(the stored recipe is what locate rebuilds from)");
  RON_CHECK(spec.n == dir.n(), "save_directory: spec n " << spec.n
                                   << " != directory n " << dir.n());
  // Streaming: a directory over a million-node overlay can be large too
  // (names + holder lists), and the serving path writes it alongside the
  // rings section.
  WireStreamWriter w(
      path, version,
      static_cast<std::uint32_t>(SnapshotKind::kObjectDirectory),
      stream_checksum_seed(version, SnapshotKind::kObjectDirectory));
  if (version >= kSnapshotVersion) {
    write_spec(w, spec);
  } else {
    check_v1_representable(spec, true, false, true, "directory");
    write_directory_meta_v1(w, spec);
  }
  write_directory_payload(w, dir);
  w.finish();
}

void save_churn_bundle(const ScenarioSpec& spec,
                       const ObjectDirectory& initial,
                       const ChurnTrace& trace, const std::string& path,
                       std::uint32_t version) {
  // v2-only by design: a churn bundle without an embedded recipe could not
  // be replayed, so there is no legacy encoding to gate down to.
  RON_CHECK(version == kSnapshotVersion,
            "snapshot: churn bundles require format version "
                << kSnapshotVersion);
  RON_CHECK(!spec.family.empty(),
            "save_churn_bundle: the scenario spec must name a metric family "
            "(the stored recipe is what replay rebuilds from)");
  RON_CHECK(spec.n == initial.n(), "save_churn_bundle: spec n "
                                       << spec.n << " != directory n "
                                       << initial.n());
  trace.validate(initial.n());
  WireWriter w;
  write_spec(w, spec);
  write_directory_payload(w, initial);
  write_trace_payload(w, trace);
  write_snapshot(SnapshotKind::kChurnBundle, w, path, version);
}

LoadedChurnBundle load_churn_bundle(const std::string& path,
                                    SnapshotInfo* info) {
  SnapshotInfo local;
  const std::vector<std::uint8_t> file =
      read_snapshot_of_kind(path, SnapshotKind::kChurnBundle, local);
  if (info != nullptr) *info = local;
  RON_CHECK(local.version >= kSnapshotVersion,
            "snapshot: churn bundle labeled v" << local.version);
  WireReader r(payload_view(file));
  ScenarioSpec spec = read_spec(r);
  RON_CHECK(!spec.family.empty(),
            "snapshot: churn bundle recipe is missing its metric family");
  RON_CHECK(spec.n <= kInvalidNode,
            "snapshot: churn bundle node count " << spec.n);
  const std::size_t n = static_cast<std::size_t>(spec.n);
  ObjectDirectory initial = read_directory_payload(r, n);
  ChurnTrace trace = read_trace_payload(r, n);
  r.expect_done();
  return LoadedChurnBundle{std::move(spec), std::move(initial),
                           std::move(trace)};
}

LoadedDirectory load_directory(const std::string& path, SnapshotInfo* info) {
  WireStreamReader r(path);
  const SnapshotInfo local =
      open_stream_section_of_kind(r, path, SnapshotKind::kObjectDirectory);
  if (info != nullptr) *info = local;
  ScenarioSpec spec = local.version >= kSnapshotVersion
                          ? read_spec(r)
                          : read_directory_meta_v1(r);
  RON_CHECK(!spec.family.empty(),
            "snapshot: directory recipe is missing its metric family");
  RON_CHECK(spec.n <= kInvalidNode,
            "snapshot: directory node count " << spec.n);
  ObjectDirectory dir =
      read_directory_payload(r, static_cast<std::size_t>(spec.n));
  r.expect_done();
  return LoadedDirectory{std::move(spec), std::move(dir)};
}

}  // namespace ron
