#include "oracle/wire.h"

#include <istream>
#include <ostream>

namespace ron {

void write_stream_bytes(std::ostream& out, std::span<const std::uint8_t> bytes,
                        const char* what) {
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  RON_CHECK(out.good(), "snapshot: short write (" << what << ", "
                                                  << bytes.size()
                                                  << " bytes)");
}

void read_stream_bytes(std::istream& in, std::span<std::uint8_t> bytes,
                       const char* what) {
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  RON_CHECK(static_cast<std::size_t>(in.gcount()) == bytes.size(),
            "snapshot: short read (" << what << ", wanted " << bytes.size()
                                     << " bytes, got " << in.gcount() << ")");
}

std::size_t read_stream_prefix(std::istream& in,
                               std::span<std::uint8_t> bytes) {
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  // A short read at EOF sets failbit+eofbit and is the expected "foreign or
  // short file" answer. badbit is different: the underlying stream FAILED
  // mid-read (disk error, throwing streambuf), and returning the partial
  // count would make a kind-sniffing caller mistake a broken device for a
  // short file — that must surface as an error, not a guess.
  RON_CHECK(!in.bad(), "snapshot: stream error reading " << bytes.size()
                           << "-byte prefix (got " << in.gcount() << ")");
  return static_cast<std::size_t>(in.gcount());
}

std::uint64_t fnv1a64_continue(std::uint64_t state,
                               std::span<const std::uint8_t> bytes) {
  for (std::uint8_t b : bytes) {
    state ^= b;
    state *= 0x100000001b3ULL;
  }
  return state;
}

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  return fnv1a64_continue(kFnv1a64Basis, bytes);
}

}  // namespace ron
