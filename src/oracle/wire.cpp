#include "oracle/wire.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>

namespace ron {

void write_stream_bytes(std::ostream& out, std::span<const std::uint8_t> bytes,
                        const char* what) {
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  RON_CHECK(out.good(), "snapshot: short write (" << what << ", "
                                                  << bytes.size()
                                                  << " bytes)");
}

void read_stream_bytes(std::istream& in, std::span<std::uint8_t> bytes,
                       const char* what) {
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  RON_CHECK(static_cast<std::size_t>(in.gcount()) == bytes.size(),
            "snapshot: short read (" << what << ", wanted " << bytes.size()
                                     << " bytes, got " << in.gcount() << ")");
}

std::size_t read_stream_prefix(std::istream& in,
                               std::span<std::uint8_t> bytes) {
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  // A short read at EOF sets failbit+eofbit and is the expected "foreign or
  // short file" answer. badbit is different: the underlying stream FAILED
  // mid-read (disk error, throwing streambuf), and returning the partial
  // count would make a kind-sniffing caller mistake a broken device for a
  // short file — that must surface as an error, not a guess.
  RON_CHECK(!in.bad(), "snapshot: stream error reading " << bytes.size()
                           << "-byte prefix (got " << in.gcount() << ")");
  return static_cast<std::size_t>(in.gcount());
}

std::uint64_t fnv1a64_continue(std::uint64_t state,
                               std::span<const std::uint8_t> bytes) {
  for (std::uint8_t b : bytes) {
    state ^= b;
    state *= 0x100000001b3ULL;
  }
  return state;
}

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  return fnv1a64_continue(kFnv1a64Basis, bytes);
}

// --- streaming writer -----------------------------------------------------

WireStreamWriter::WireStreamWriter(const std::string& path,
                                   std::uint32_t version, std::uint32_t kind,
                                   std::uint64_t checksum_seed)
    : path_(path),
      out_(path, std::ios::binary | std::ios::trunc),
      sum_(checksum_seed) {
  RON_CHECK(out_.good(), "snapshot: cannot open " << path_ << " for writing");
  WireWriter header;
  for (std::uint8_t b : kSnapshotMagic) header.u8(b);
  header.u32(version);
  header.u32(kind);
  header.u64(0);  // payload length — patched by finish()
  header.u64(0);  // checksum — patched by finish()
  write_stream_bytes(out_, header.bytes(), "header");
  chunk_.reserve(kStreamChunkBytes + sizeof(std::uint64_t));
}

WireStreamWriter::~WireStreamWriter() = default;

void WireStreamWriter::flush_chunk() {
  if (chunk_.empty()) return;
  sum_ = fnv1a64_continue(sum_, chunk_);
  write_stream_bytes(out_, chunk_, "payload chunk");
  total_ += chunk_.size();
  chunk_.clear();
}

void WireStreamWriter::finish() {
  RON_CHECK(!finished_, "snapshot: finish() called twice on " << path_);
  flush_chunk();
  // Patch the placeholder length/checksum fields (byte offsets 16 and 24:
  // magic[8] + version u32 + kind u32 precede them).
  WireWriter tail;
  tail.u64(total_);
  tail.u64(sum_);
  out_.seekp(16, std::ios::beg);
  RON_CHECK(out_.good(), "snapshot: cannot seek to patch header of "
                             << path_);
  write_stream_bytes(out_, tail.bytes(), "header patch");
  out_.flush();
  RON_CHECK(out_.good(), "snapshot: short write to " << path_);
  out_.close();
  finished_ = true;
}

// --- streaming reader -----------------------------------------------------

WireStreamReader::WireStreamReader(const std::string& path)
    : path_(path), in_(path, std::ios::binary), sum_(kFnv1a64Basis) {
  RON_CHECK(in_.good(), "snapshot: cannot open " << path_);
  in_.seekg(0, std::ios::end);
  const std::streamoff size = in_.tellg();
  RON_CHECK(size >= 0, "snapshot: cannot stat " << path_);
  in_.seekg(0, std::ios::beg);
  RON_CHECK(static_cast<std::uint64_t>(size) >= kSnapshotHeaderBytes,
            "snapshot: " << path_ << " is " << size
                         << " bytes, smaller than the header");
  std::uint8_t hdr[kSnapshotHeaderBytes];
  read_stream_bytes(in_, hdr, "header");
  RON_CHECK(std::memcmp(hdr, kSnapshotMagic, sizeof(kSnapshotMagic)) == 0,
            "snapshot: " << path_
                         << " has wrong magic (not a RON snapshot)");
  WireReader rd(std::span(hdr + sizeof(kSnapshotMagic),
                          kSnapshotHeaderBytes - sizeof(kSnapshotMagic)));
  header_.version = rd.u32();
  header_.kind = rd.u32();
  header_.payload_bytes = rd.u64();
  header_.checksum = rd.u64();
  RON_CHECK(static_cast<std::uint64_t>(size) - kSnapshotHeaderBytes ==
                header_.payload_bytes,
            "snapshot: " << path_ << " payload is "
                         << static_cast<std::uint64_t>(size) -
                                kSnapshotHeaderBytes
                         << " bytes, header promises "
                         << header_.payload_bytes
                         << " (truncated or trailing garbage)");
}

void WireStreamReader::seed_checksum(std::uint64_t seed) {
  RON_CHECK(fetched_ == 0,
            "snapshot: checksum seeded after payload reads began");
  sum_ = seed;
}

void WireStreamReader::need(std::size_t n, const char* what) {
  if (avail_ - pos_ >= n) return;
  if (buf_.empty()) buf_.resize(kStreamChunkBytes);
  RON_CHECK(n <= buf_.size(), "snapshot: oversized read of " << n
                                  << " bytes (" << what << ")");
  // Slide the unread tail to the front, then refill greedily up to the
  // payload boundary, folding fetched bytes into the running checksum.
  const std::size_t tail = avail_ - pos_;
  if (tail > 0 && pos_ > 0) std::memmove(buf_.data(), buf_.data() + pos_,
                                         tail);
  pos_ = 0;
  avail_ = tail;
  const std::uint64_t left = header_.payload_bytes - fetched_;
  const std::size_t want = static_cast<std::size_t>(
      std::min<std::uint64_t>(buf_.size() - avail_, left));
  if (want > 0) {
    read_stream_bytes(in_, std::span(buf_.data() + avail_, want), what);
    sum_ = fnv1a64_continue(
        sum_, std::span<const std::uint8_t>(buf_.data() + avail_, want));
    fetched_ += want;
    avail_ += want;
  }
  RON_CHECK(avail_ >= n, "snapshot truncated reading "
                             << what << " (" << n << " bytes wanted, "
                             << avail_ << " left)");
}

std::string WireStreamReader::str() {
  const std::uint64_t len = u64();
  RON_CHECK(len <= remaining(), "snapshot truncated reading str body ("
                                    << len << " bytes wanted, " << remaining()
                                    << " left)");
  std::string s;
  s.reserve(static_cast<std::size_t>(len));
  std::uint64_t left = len;
  while (left > 0) {
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(left, kStreamChunkBytes / 2));
    need(take, "str body");
    s.append(reinterpret_cast<const char*>(buf_.data() + pos_), take);
    pos_ += take;
    consumed_ += take;
    left -= take;
  }
  return s;
}

void WireStreamReader::drain() {
  while (!done()) {
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining(), kStreamChunkBytes / 2));
    need(take, "payload");
    pos_ += take;
    consumed_ += take;
  }
}

void WireStreamReader::expect_done() {
  RON_CHECK(done(), "snapshot: " << remaining() << " trailing bytes");
  RON_CHECK(sum_ == header_.checksum,
            "snapshot: " << path_ << " checksum mismatch (corrupt payload)");
}

}  // namespace ron
