#include "oracle/wire.h"

namespace ron {

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace ron
