#include "oracle/wire.h"

namespace ron {

std::uint64_t fnv1a64_continue(std::uint64_t state,
                               std::span<const std::uint8_t> bytes) {
  for (std::uint8_t b : bytes) {
    state ^= b;
    state *= 0x100000001b3ULL;
  }
  return state;
}

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  return fnv1a64_continue(kFnv1a64Basis, bytes);
}

}  // namespace ron
