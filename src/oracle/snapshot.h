// Versioned, checksummed snapshots of the paper's structures.
//
// The constructions are expensive relative to queries (a DistanceLabeling
// over a few thousand nodes takes seconds to build and microseconds to
// query), so the serving story is: build once, snapshot to disk, load into
// any number of serving processes. One file holds one section:
//
//   [magic "RONSNAP\n"] [u32 format version] [u32 section kind]
//   [u64 payload size] [u64 FNV-1a checksum] [payload]
//
// The checksum covers the payload; in version 2 it additionally covers the
// version and kind header fields, so flipping a v2 file's version or kind
// label fails the checksum instead of reaching the wrong parser.
//
// Format version 2 (current): every section kind embeds the ScenarioSpec
// the artifact was built from as a payload prefix, so any snapshot is a
// self-describing recipe — `ron_oracle info` prints the spec back and
// `locate` rebuilds the exact metric and overlay from it. Version 1 files
// (which carried either no recipe or the old OracleMeta/LocationMeta
// structs) still load: the loaders synthesize an equivalent spec, and every
// save function takes a version gate so v1 bytes can be reproduced
// bit-identically (the committed golden fixtures pin both formats).
//
// Loads validate magic, version, kind, exact length and checksum before
// parsing, and the parse itself bounds-checks every count and index, so a
// truncated, bit-flipped or mislabeled file throws ron::Error instead of
// corrupting the serving process.
//
// RingsOfNeighbors and DistanceLabeling load back as the live classes
// (queries on the loaded object are bit-identical to the builder's).
// NeighborSystem is a *builder* — it holds references to the ProximityIndex
// and net machinery it was derived from — so it loads as
// NeighborSystemSnapshot: the same read accessors over the materialized
// rings, without the construction-time machinery.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "churn/churn_trace.h"
#include "common/check.h"
#include "core/rings.h"
#include "labeling/distance_labels.h"
#include "labeling/neighbor_system.h"
#include "location/object_directory.h"
#include "scenario/scenario_spec.h"

namespace ron {

/// Current write format (spec-carrying) and the legacy format the loaders
/// still accept and the writers can still emit through their version gate.
inline constexpr std::uint32_t kSnapshotVersion = 2;
inline constexpr std::uint32_t kSnapshotVersionV1 = 1;

enum class SnapshotKind : std::uint32_t {
  kRings = 1,
  kNeighborSystem = 2,
  kDistanceLabeling = 3,
  kOracle = 4,           // serving bundle: scenario + distance labeling
  kObjectDirectory = 5,  // object-location bundle: scenario + directory
  kChurnBundle = 6,      // dynamic bundle: scenario + initial directory +
                         // churn trace (replay reproduces the mutated
                         // overlay bit-for-bit; v2-only)
};

/// Header fields of a snapshot file, validated (magic/version/length/
/// checksum) but with the payload left unparsed.
struct SnapshotInfo {
  SnapshotKind kind = SnapshotKind::kRings;
  std::uint32_t version = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t checksum = 0;
};

SnapshotInfo inspect_snapshot(const std::string& path);

/// Header-only peek at the section kind (reads 16 bytes, no validation).
/// Returns 0 for unreadable/short files or non-snapshot magic — callers
/// wanting errors should follow up with inspect_snapshot/load. Lives here so
/// it cannot drift from the header layout the save path writes.
std::uint32_t peek_snapshot_kind(const std::string& path);

// Save functions: `spec` is the scenario the artifact was built from and is
// embedded in v2 payloads. Writing with version = kSnapshotVersionV1
// reproduces the legacy bytes (the spec is reduced to the old meta fields
// for the oracle/directory kinds and dropped for the rest); the gate throws
// if the spec holds information the v1 format cannot carry — a downgrade
// never silently loses recipe fields. When the spec names a family, spec.n
// must match the artifact's node count.
//
// Load functions: `spec`/`info` out-parameters (when non-null) receive the
// embedded or synthesized scenario and the validated header fields. A v1
// file yields a spec with an empty family (unknown provenance) except for
// directories, whose v1 meta carried the full recipe.

// --- RingsOfNeighbors ------------------------------------------------------

void save_rings(const RingsOfNeighbors& rings, const std::string& path,
                const ScenarioSpec& spec = {},
                std::uint32_t version = kSnapshotVersion);
RingsOfNeighbors load_rings(const std::string& path,
                            ScenarioSpec* spec = nullptr,
                            SnapshotInfo* info = nullptr);

// --- NeighborSystem --------------------------------------------------------

/// The read-only view of a NeighborSystem that snapshots preserve: every
/// per-node accessor of the live class (the construction inputs — proximity
/// index, nets, packings — are not part of the snapshot).
class NeighborSystemSnapshot {
 public:
  std::size_t n() const { return n_; }
  double delta() const { return delta_; }
  const NeighborProfile& profile() const { return profile_; }
  int num_levels() const { return num_levels_; }
  int num_z_scales() const { return num_z_scales_; }

  Dist r(NodeId u, int i) const { return r_[idx(u, i)]; }
  std::span<const NodeId> X(NodeId u, int i) const { return x_[idx(u, i)]; }
  std::span<const NodeId> Y(NodeId u, int i) const { return y_[idx(u, i)]; }
  NodeId nearest_x(NodeId u, int i) const { return nearest_x_[idx(u, i)]; }
  NodeId f(NodeId u, int i) const { return f_[idx(u, i)]; }
  int y_level(NodeId u, int i) const { return y_level_[idx(u, i)]; }

  std::span<const NodeId> Z(NodeId u, int j) const { return z_[zidx(u, j)]; }
  std::span<const NodeId> Z_all(NodeId u) const { return z_all_[check_u(u)]; }
  std::span<const NodeId> X_all(NodeId u) const { return x_all_[check_u(u)]; }
  std::span<const NodeId> host_set(NodeId u) const {
    return host_[check_u(u)];
  }
  std::span<const NodeId> virtual_set(NodeId u) const {
    return virtual_[check_u(u)];
  }

 private:
  friend NeighborSystemSnapshot load_neighbor_system(const std::string&,
                                                     ScenarioSpec*,
                                                     SnapshotInfo*);

  std::size_t check_u(NodeId u) const {
    RON_CHECK(u < n_, "node u=" << u << ", n=" << n_);
    return u;
  }
  std::size_t idx(NodeId u, int i) const {
    RON_CHECK(u < n_ && i >= 0 && i < num_levels_,
              "u=" << u << "/" << n_ << ", i=" << i << "/" << num_levels_);
    return u * static_cast<std::size_t>(num_levels_) +
           static_cast<std::size_t>(i);
  }
  std::size_t zidx(NodeId u, int j) const {
    RON_CHECK(u < n_ && j >= 1 && j <= num_z_scales_,
              "u=" << u << "/" << n_ << ", j=" << j << "/" << num_z_scales_);
    return u * static_cast<std::size_t>(num_z_scales_) +
           static_cast<std::size_t>(j - 1);
  }

  std::size_t n_ = 0;
  double delta_ = 0.0;
  NeighborProfile profile_;
  int num_levels_ = 0;
  int num_z_scales_ = 0;
  std::vector<Dist> r_;
  std::vector<std::vector<NodeId>> x_;
  std::vector<std::vector<NodeId>> y_;
  std::vector<NodeId> nearest_x_;
  std::vector<NodeId> f_;
  std::vector<int> y_level_;
  std::vector<std::vector<NodeId>> z_;
  std::vector<std::vector<NodeId>> z_all_;
  std::vector<std::vector<NodeId>> x_all_;
  std::vector<std::vector<NodeId>> host_;
  std::vector<std::vector<NodeId>> virtual_;
};

void save_neighbor_system(const NeighborSystem& sys, const std::string& path,
                          const ScenarioSpec& spec = {},
                          std::uint32_t version = kSnapshotVersion);
NeighborSystemSnapshot load_neighbor_system(const std::string& path,
                                            ScenarioSpec* spec = nullptr,
                                            SnapshotInfo* info = nullptr);

// --- DistanceLabeling ------------------------------------------------------

void save_labeling(const DistanceLabeling& dls, const std::string& path,
                   const ScenarioSpec& spec = {},
                   std::uint32_t version = kSnapshotVersion);
DistanceLabeling load_labeling(const std::string& path,
                               ScenarioSpec* spec = nullptr,
                               SnapshotInfo* info = nullptr);

// --- Oracle serving bundle -------------------------------------------------

struct LoadedOracle {
  /// Build recipe. A v1 file cannot name its metric family: the spec then
  /// has an empty family and only n/seed/delta filled from the old meta.
  ScenarioSpec spec;
  /// Display name of the metric the labeling was built over (provenance for
  /// `ron_oracle info`; the spec, not this name, is the rebuild recipe).
  std::string metric_name;
  DistanceLabeling labeling;
};

/// spec.n must equal dls.n().
void save_oracle(const ScenarioSpec& spec, const std::string& metric_name,
                 const DistanceLabeling& dls, const std::string& path,
                 std::uint32_t version = kSnapshotVersion);
/// `info`, when non-null, receives the validated header fields — a combined
/// inspect+load in one read of the file.
LoadedOracle load_oracle(const std::string& path,
                         SnapshotInfo* info = nullptr);

// --- Object-location bundle ------------------------------------------------

struct LoadedDirectory {
  /// The deterministic overlay recipe: rebuilding the spec through a
  /// ScenarioBuilder reproduces the exact metric and X+Y rings the objects
  /// were published against, so a directory snapshot is self-contained.
  ScenarioSpec spec;
  ObjectDirectory directory;
};

/// spec.n must equal directory.n() and spec.family must be non-empty (a
/// directory without a rebuildable recipe cannot serve locates).
void save_directory(const ScenarioSpec& spec, const ObjectDirectory& dir,
                    const std::string& path,
                    std::uint32_t version = kSnapshotVersion);
LoadedDirectory load_directory(const std::string& path,
                               SnapshotInfo* info = nullptr);

// --- Churn bundle -----------------------------------------------------------

/// The dynamic-overlay serving artifact: the scenario recipe, the directory
/// state the trace starts from, and the trace itself. Because the mutator
/// is deterministic (spec.churn_seed drives every maintenance draw),
/// rebuild(spec) + replay(trace) reproduces the exact post-churn overlay
/// and directory — the bundle IS the patched snapshot.
struct LoadedChurnBundle {
  ScenarioSpec spec;
  /// Publish state BEFORE the trace (replay applies the trace's
  /// publish/unpublish/leave effects on top).
  ObjectDirectory initial;
  ChurnTrace trace;
};

/// spec.family must be non-empty and spec.n must equal initial.n(). Churn
/// bundles are v2-only: the legacy format has no spec and therefore no
/// replayable recipe.
void save_churn_bundle(const ScenarioSpec& spec,
                       const ObjectDirectory& initial,
                       const ChurnTrace& trace, const std::string& path,
                       std::uint32_t version = kSnapshotVersion);
LoadedChurnBundle load_churn_bundle(const std::string& path,
                                    SnapshotInfo* info = nullptr);

}  // namespace ron
