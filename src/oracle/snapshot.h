// Versioned, checksummed snapshots of the paper's structures.
//
// The constructions are expensive relative to queries (a DistanceLabeling
// over a few thousand nodes takes seconds to build and microseconds to
// query), so the serving story is: build once, snapshot to disk, load into
// any number of serving processes. One file holds one section:
//
//   [magic "RONSNAP\n"] [u32 format version] [u32 section kind]
//   [u64 payload size] [u64 FNV-1a checksum of payload] [payload]
//
// Loads validate magic, version, kind, exact length and checksum before
// parsing, and the parse itself bounds-checks every count and index, so a
// truncated, bit-flipped or mislabeled file throws ron::Error instead of
// corrupting the serving process.
//
// RingsOfNeighbors and DistanceLabeling load back as the live classes
// (queries on the loaded object are bit-identical to the builder's).
// NeighborSystem is a *builder* — it holds references to the ProximityIndex
// and net machinery it was derived from — so it loads as
// NeighborSystemSnapshot: the same read accessors over the materialized
// rings, without the construction-time machinery.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "core/rings.h"
#include "labeling/distance_labels.h"
#include "labeling/neighbor_system.h"
#include "location/object_directory.h"

namespace ron {

inline constexpr std::uint32_t kSnapshotVersion = 1;

enum class SnapshotKind : std::uint32_t {
  kRings = 1,
  kNeighborSystem = 2,
  kDistanceLabeling = 3,
  kOracle = 4,           // serving bundle: metadata + distance labeling
  kObjectDirectory = 5,  // object-location bundle: overlay recipe + directory
};

/// Header fields of a snapshot file, validated (magic/version/length/
/// checksum) but with the payload left unparsed.
struct SnapshotInfo {
  SnapshotKind kind = SnapshotKind::kRings;
  std::uint32_t version = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t checksum = 0;
};

SnapshotInfo inspect_snapshot(const std::string& path);

/// Header-only peek at the section kind (reads 16 bytes, no validation).
/// Returns 0 for unreadable/short files or non-snapshot magic — callers
/// wanting errors should follow up with inspect_snapshot/load. Lives here so
/// it cannot drift from the header layout the save path writes.
std::uint32_t peek_snapshot_kind(const std::string& path);

// --- RingsOfNeighbors ------------------------------------------------------

void save_rings(const RingsOfNeighbors& rings, const std::string& path);
RingsOfNeighbors load_rings(const std::string& path);

// --- NeighborSystem --------------------------------------------------------

/// The read-only view of a NeighborSystem that snapshots preserve: every
/// per-node accessor of the live class (the construction inputs — proximity
/// index, nets, packings — are not part of the snapshot).
class NeighborSystemSnapshot {
 public:
  std::size_t n() const { return n_; }
  double delta() const { return delta_; }
  const NeighborProfile& profile() const { return profile_; }
  int num_levels() const { return num_levels_; }
  int num_z_scales() const { return num_z_scales_; }

  Dist r(NodeId u, int i) const { return r_[idx(u, i)]; }
  std::span<const NodeId> X(NodeId u, int i) const { return x_[idx(u, i)]; }
  std::span<const NodeId> Y(NodeId u, int i) const { return y_[idx(u, i)]; }
  NodeId nearest_x(NodeId u, int i) const { return nearest_x_[idx(u, i)]; }
  NodeId f(NodeId u, int i) const { return f_[idx(u, i)]; }
  int y_level(NodeId u, int i) const { return y_level_[idx(u, i)]; }

  std::span<const NodeId> Z(NodeId u, int j) const { return z_[zidx(u, j)]; }
  std::span<const NodeId> Z_all(NodeId u) const { return z_all_[check_u(u)]; }
  std::span<const NodeId> X_all(NodeId u) const { return x_all_[check_u(u)]; }
  std::span<const NodeId> host_set(NodeId u) const {
    return host_[check_u(u)];
  }
  std::span<const NodeId> virtual_set(NodeId u) const {
    return virtual_[check_u(u)];
  }

 private:
  friend NeighborSystemSnapshot load_neighbor_system(const std::string&);

  std::size_t check_u(NodeId u) const {
    RON_CHECK(u < n_);
    return u;
  }
  std::size_t idx(NodeId u, int i) const {
    RON_CHECK(u < n_ && i >= 0 && i < num_levels_);
    return u * static_cast<std::size_t>(num_levels_) +
           static_cast<std::size_t>(i);
  }
  std::size_t zidx(NodeId u, int j) const {
    RON_CHECK(u < n_ && j >= 1 && j <= num_z_scales_);
    return u * static_cast<std::size_t>(num_z_scales_) +
           static_cast<std::size_t>(j - 1);
  }

  std::size_t n_ = 0;
  double delta_ = 0.0;
  NeighborProfile profile_;
  int num_levels_ = 0;
  int num_z_scales_ = 0;
  std::vector<Dist> r_;
  std::vector<std::vector<NodeId>> x_;
  std::vector<std::vector<NodeId>> y_;
  std::vector<NodeId> nearest_x_;
  std::vector<NodeId> f_;
  std::vector<int> y_level_;
  std::vector<std::vector<NodeId>> z_;
  std::vector<std::vector<NodeId>> z_all_;
  std::vector<std::vector<NodeId>> x_all_;
  std::vector<std::vector<NodeId>> host_;
  std::vector<std::vector<NodeId>> virtual_;
};

void save_neighbor_system(const NeighborSystem& sys, const std::string& path);
NeighborSystemSnapshot load_neighbor_system(const std::string& path);

// --- DistanceLabeling ------------------------------------------------------

void save_labeling(const DistanceLabeling& dls, const std::string& path);
DistanceLabeling load_labeling(const std::string& path);

// --- Oracle serving bundle -------------------------------------------------

/// Provenance carried alongside the labeling so `ron_oracle info` can say
/// what a snapshot contains without rebuilding anything.
struct OracleMeta {
  std::string metric_name;
  std::uint64_t n = 0;
  std::uint64_t seed = 0;
  double delta = 0.0;

  friend bool operator==(const OracleMeta&, const OracleMeta&) = default;
};

struct LoadedOracle {
  OracleMeta meta;
  DistanceLabeling labeling;
};

void save_oracle(const OracleMeta& meta, const DistanceLabeling& dls,
                 const std::string& path);
/// `info`, when non-null, receives the validated header fields — a combined
/// inspect+load in one read of the file.
LoadedOracle load_oracle(const std::string& path,
                         SnapshotInfo* info = nullptr);

// --- Object-location bundle ------------------------------------------------

/// The deterministic overlay recipe stored alongside the directory: with
/// these four fields `ron_oracle locate` rebuilds the exact metric and X+Y
/// rings the objects were published against (generators are pure functions
/// of kind/n/seed), so a directory snapshot is self-contained.
struct LocationMeta {
  std::string metric_kind;  // generator kind: clustered|euclid|geoline|grid
  std::uint64_t n = 0;
  std::uint64_t metric_seed = 0;
  std::uint64_t overlay_seed = 0;

  friend bool operator==(const LocationMeta&, const LocationMeta&) = default;
};

struct LoadedDirectory {
  LocationMeta meta;
  ObjectDirectory directory;
};

/// meta.n must equal directory.n().
void save_directory(const LocationMeta& meta, const ObjectDirectory& dir,
                    const std::string& path);
LoadedDirectory load_directory(const std::string& path,
                               SnapshotInfo* info = nullptr);

}  // namespace ron
