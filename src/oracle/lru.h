// LruShard: one worker's private slice of a bounded result cache.
//
// Classic list+map LRU, extracted from OracleEngine so it can be unit
// tested directly (duplicate-key overwrite and eviction order are serving
// correctness, not implementation detail: a stale value survived into a
// refreshed entry would be served forever). The engine owns one shard per
// worker and shards batches by source node, so a shard is only ever touched
// by its worker during a batch — no locking here by design.
//
// Concurrency contract: deliberately lock-free AND annotation-free. There
// is no mutex to hang a RON_GUARDED_BY off (common/thread_annotations.h);
// the single-owner discipline is the engine's batch protocol, and it is
// checked dynamically — the tsan.* stress shard (tests/test_concurrency.cpp)
// drives shard invalidation during in-flight batches under ThreadSanitizer,
// and the deterministic epoch-tag unit tests in the same file pin the
// invalidation semantics single-threaded.
//
// Contract highlights:
//   - put() on an existing key REFRESHES recency and OVERWRITES the value.
//     Keeping the stale value would pin a pre-mutation result in cache
//     forever once overlay epochs land (the engine additionally clears
//     locate shards on epoch change — see OracleEngine::apply).
//   - capacity 0 disables the shard (enabled() == false); get/put on a
//     disabled shard are valid no-ops so callers can branch once.
//   - clear() drops entries but keeps the hit counter (hits are per-batch
//     accounting, reset separately).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ron {

template <typename Value>
class LruShard {
 public:
  explicit LruShard(std::size_t capacity) : capacity_(capacity) {}

  bool enabled() const { return capacity_ > 0; }
  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Copies the cached value into `out` and refreshes recency; false on
  /// miss (or when disabled).
  bool get(std::uint64_t key, Value& out) {
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    order_.splice(order_.begin(), order_, it->second);  // refresh recency
    out = it->second->second;
    ++hits_;
    return true;
  }

  /// Inserts or overwrites; the touched key becomes most recent, and the
  /// least recent entry is evicted when the shard is full.
  void put(std::uint64_t key, Value value) {
    if (!enabled()) return;
    auto it = map_.find(key);
    if (it != map_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      it->second->second = std::move(value);  // overwrite, never keep stale
      return;
    }
    if (map_.size() >= capacity_) {
      map_.erase(order_.back().first);
      order_.pop_back();
    }
    order_.emplace_front(key, std::move(value));
    map_.emplace(key, order_.begin());
  }

  /// Drops every entry (epoch change / snapshot swap); hit accounting is
  /// untouched.
  void clear() {
    order_.clear();
    map_.clear();
  }

  /// Least-recent-first key order (test hook for the eviction contract).
  std::vector<std::uint64_t> keys_by_recency() const {
    std::vector<std::uint64_t> keys;
    keys.reserve(order_.size());
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      keys.push_back(it->first);
    }
    return keys;
  }

  std::size_t hits() const { return hits_; }
  void reset_hits() { hits_ = 0; }

 private:
  using Order = std::list<std::pair<std::uint64_t, Value>>;
  std::size_t capacity_;
  std::size_t hits_ = 0;
  Order order_;  // front = most recent
  std::unordered_map<std::uint64_t, typename Order::iterator> map_;
};

}  // namespace ron
