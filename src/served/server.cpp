#include "served/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <sstream>
#include <utility>

#include "location/object_directory.h"
#include "telemetry/trace.h"

namespace ron {

namespace {

/// A request that parsed fine but cannot be served as asked; the handler
/// answers an error frame with this code and keeps the connection.
struct Reject {
  ErrorCode code;
  std::string message;
};

/// Reassembly-buffer cap: beyond roughly two maximal frames of unprocessed
/// input we stop draining the socket and let TCP flow control push back on
/// the sender (the kernel buffer, not the server heap, absorbs the burst).
std::size_t inbuf_cap(const ServerOptions& opts) {
  return 2 * (opts.max_frame_bytes + kFrameHeaderBytes);
}

}  // namespace

struct Server::Conn {
  Conn(int fd, std::size_t max_frame_bytes, std::uint64_t now)
      : fd(fd), in(max_frame_bytes), last_active_ns(now) {}

  int fd;
  FrameAssembler in;
  /// Encoded-but-unsent responses; [out_pos, out.size()) is pending.
  std::vector<std::uint8_t> out;
  std::size_t out_pos = 0;
  std::uint64_t last_active_ns;
  bool paused = false;  // POLLIN withdrawn while the outbuf is over limit
  bool dead = false;    // reaped (and closed) at the end of the iteration
};

Server::Server(ServedState& state, ServerOptions opts)
    : state_(state),
      opts_(std::move(opts)),
      clock_(opts_.clock != nullptr ? opts_.clock : &Clock::real()) {
  RON_CHECK(state_.engine != nullptr, "served: state has no engine");
  RON_CHECK(opts_.max_frame_bytes >= 16,
            "served: max_frame_bytes " << opts_.max_frame_bytes
                                       << " cannot hold a payload header");
  m_connections_ = &metrics_.gauge("ron_served_connections");
  m_accepts_ = &metrics_.counter("ron_served_accepts_total");
  m_disconnects_ = &metrics_.counter("ron_served_disconnects_total");
  m_idle_closes_ = &metrics_.counter("ron_served_idle_closes_total");
  m_frames_ = &metrics_.counter("ron_served_frames_total");
  m_bytes_in_ = &metrics_.counter("ron_served_bytes_in_total");
  m_bytes_out_ = &metrics_.counter("ron_served_bytes_out_total");
  m_protocol_errors_ = &metrics_.counter("ron_served_protocol_errors_total");
  m_backpressure_pauses_ =
      &metrics_.counter("ron_served_backpressure_pauses_total");
  m_epoch_swaps_ = &metrics_.counter("ron_served_epoch_swaps_total");
  m_frame_seconds_ = &metrics_.histogram("ron_served_frame_seconds");
}

Server::~Server() {
  close_all();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
}

std::uint16_t Server::start() {
  RON_CHECK(listen_fd_ < 0, "served: start() called twice");
  int wake[2];
  RON_CHECK(::pipe2(wake, O_NONBLOCK | O_CLOEXEC) == 0,
            "served: pipe2: " << std::strerror(errno));
  wake_rd_ = wake[0];
  wake_wr_ = wake[1];

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  RON_CHECK(listen_fd_ >= 0, "served: socket: " << std::strerror(errno));
  const int one = 1;
  RON_CHECK(::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                         sizeof(one)) == 0,
            "served: setsockopt(SO_REUSEADDR): " << std::strerror(errno));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  RON_CHECK(::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) == 1,
            "served: host '" << opts_.host
                             << "' is not an IPv4 address literal");
  RON_CHECK(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) == 0,
            "served: bind " << opts_.host << ":" << opts_.port << ": "
                            << std::strerror(errno));
  RON_CHECK(::listen(listen_fd_, opts_.backlog) == 0,
            "served: listen: " << std::strerror(errno));

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  RON_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                          &len) == 0,
            "served: getsockname: " << std::strerror(errno));
  port_ = ntohs(bound.sin_port);
  return port_;
}

void Server::stop() {
  // One byte down the self-pipe: async-signal-safe, idempotent (a full
  // pipe already guarantees a pending wakeup). Valid any time after
  // start(); the loop turns it into a graceful drain.
  const std::uint8_t b = 1;
  if (wake_wr_ >= 0) {
    [[maybe_unused]] const ssize_t rc = ::write(wake_wr_, &b, 1);
  }
}

void Server::run() {
  RON_CHECK(listen_fd_ >= 0, "served: run() before start()");
  std::vector<pollfd> pfds;
  std::vector<Conn*> order;
  bool pending_frames = false;
  while (true) {
    if (stopping_) {
      const bool unflushed =
          std::any_of(conns_.begin(), conns_.end(), [](const auto& c) {
            return !c->dead && c->out.size() > c->out_pos;
          });
      if (!unflushed || now_ns() >= stop_deadline_) break;
    }

    pfds.clear();
    order.clear();
    pfds.push_back({wake_rd_, POLLIN, 0});
    const bool accepting =
        !stopping_ && conns_.size() < opts_.max_connections;
    pfds.push_back({listen_fd_, static_cast<short>(accepting ? POLLIN : 0),
                    0});
    for (const auto& c : conns_) {
      short events = 0;
      if (!stopping_ && !c->paused && c->in.buffered() < inbuf_cap(opts_)) {
        events |= POLLIN;
      }
      if (c->out.size() > c->out_pos) events |= POLLOUT;
      pfds.push_back({c->fd, events, 0});
      order.push_back(c.get());
    }

    int timeout_ms = -1;
    if (pending_frames) {
      timeout_ms = 0;
    } else {
      std::uint64_t deadline = std::numeric_limits<std::uint64_t>::max();
      if (opts_.idle_timeout_ns > 0) {
        for (const auto& c : conns_) {
          deadline = std::min(deadline,
                              c->last_active_ns + opts_.idle_timeout_ns);
        }
      }
      if (stopping_) deadline = std::min(deadline, stop_deadline_);
      if (deadline != std::numeric_limits<std::uint64_t>::max()) {
        const std::uint64_t now = now_ns();
        const std::uint64_t wait_ns = deadline <= now ? 0 : deadline - now;
        timeout_ms = static_cast<int>(
            std::min<std::uint64_t>(wait_ns / 1'000'000 + 1, 60'000));
      }
    }

    const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready < 0) {
      RON_CHECK(errno == EINTR, "served: poll: " << std::strerror(errno));
      continue;
    }

    if ((pfds[0].revents & POLLIN) != 0) {
      std::uint8_t drain[64];
      while (::read(wake_rd_, drain, sizeof(drain)) > 0) {
      }
      if (!stopping_) {
        stopping_ = true;
        stop_deadline_ = now_ns() + opts_.drain_timeout_ns;
      }
    }
    if (accepting && (pfds[1].revents & POLLIN) != 0) accept_ready();

    for (std::size_t i = 0; i < order.size(); ++i) {
      Conn& c = *order[i];
      const short re = pfds[2 + i].revents;
      if ((re & (POLLERR | POLLNVAL)) != 0) {
        c.dead = true;
        continue;
      }
      if ((re & POLLOUT) != 0 && !flush_out(c)) {
        c.dead = true;
        continue;
      }
      // POLLHUP without POLLIN means nothing is left to read; with POLLIN
      // the peer half-closed after sending — read the remainder first.
      if ((re & POLLIN) != 0) {
        if (!read_ready(c)) c.dead = true;
      } else if ((re & POLLHUP) != 0 && c.out.size() == c.out_pos) {
        c.dead = true;
      }
    }

    // Serve buffered frames for every live connection — including frames
    // deferred by a previous iteration's fairness budget, which is why
    // this runs unconditionally rather than only on POLLIN.
    pending_frames = false;
    const std::uint64_t now = now_ns();
    for (const auto& cp : conns_) {
      Conn& c = *cp;
      if (c.dead) continue;
      if (process_frames(c)) pending_frames = true;
      if (c.dead) continue;
      if (c.out.size() > c.out_pos && !flush_out(c)) {
        c.dead = true;
        continue;
      }
      const std::size_t unsent = c.out.size() - c.out_pos;
      if (unsent > opts_.drop_outbuf_bytes) {
        // The peer neither reads nor leaves; cut it loose before it pins
        // unbounded server memory.
        c.dead = true;
        continue;
      }
      const bool pause = unsent > opts_.max_outbuf_bytes;
      if (pause && !c.paused) m_backpressure_pauses_->add(0);
      c.paused = pause;
      if (opts_.idle_timeout_ns > 0 && unsent == 0 &&
          now - c.last_active_ns >= opts_.idle_timeout_ns) {
        m_idle_closes_->add(0);
        c.dead = true;
      }
    }

    std::erase_if(conns_, [&](const std::unique_ptr<Conn>& c) {
      if (!c->dead) return false;
      ::close(c->fd);
      m_disconnects_->add(0);
      return true;
    });
    m_connections_->set(static_cast<double>(conns_.size()));
  }
  close_all();
}

void Server::accept_ready() {
  while (conns_.size() < opts_.max_connections) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EAGAIN: drained. Anything else (ECONNABORTED, EMFILE, ...) is a
      // per-connection failure; the daemon keeps serving.
      return;
    }
    conns_.push_back(
        std::make_unique<Conn>(fd, opts_.max_frame_bytes, now_ns()));
    m_accepts_->add(0);
    m_connections_->set(static_cast<double>(conns_.size()));
  }
}

bool Server::read_ready(Conn& c) {
  std::uint8_t buf[64 * 1024];
  // Bounded reads per cycle: a firehose peer cannot monopolize the loop,
  // and the inbuf cap hands overflow back to TCP flow control.
  for (int round = 0; round < 4; ++round) {
    if (c.in.buffered() >= inbuf_cap(opts_)) return true;
    const ssize_t got = ::recv(c.fd, buf, sizeof(buf), 0);
    if (got > 0) {
      m_bytes_in_->add(0, static_cast<std::uint64_t>(got));
      c.in.append({buf, static_cast<std::size_t>(got)});
      c.last_active_ns = now_ns();
      if (got < static_cast<ssize_t>(sizeof(buf))) return true;
      continue;
    }
    if (got == 0) return false;  // orderly peer close
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;  // ECONNRESET and friends
  }
  return true;
}

bool Server::flush_out(Conn& c) {
  while (c.out_pos < c.out.size()) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE on this one
    // connection, never as a process-wide SIGPIPE.
    const ssize_t sent = ::send(c.fd, c.out.data() + c.out_pos,
                                c.out.size() - c.out_pos, MSG_NOSIGNAL);
    if (sent > 0) {
      c.out_pos += static_cast<std::size_t>(sent);
      m_bytes_out_->add(0, static_cast<std::uint64_t>(sent));
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;  // EPIPE, ECONNRESET, ...
  }
  if (c.out_pos == c.out.size()) {
    c.out.clear();
    c.out_pos = 0;
  } else if (c.out_pos >= 64 * 1024) {
    c.out.erase(c.out.begin(),
                c.out.begin() + static_cast<std::ptrdiff_t>(c.out_pos));
    c.out_pos = 0;
  }
  return true;
}

bool Server::process_frames(Conn& c) {
  std::vector<std::uint8_t> payload;
  for (std::size_t served = 0; served < opts_.max_frames_per_cycle;
       ++served) {
    if (c.out.size() - c.out_pos > opts_.max_outbuf_bytes) {
      // Backpressure: don't grow an already-over-limit outbuf. Progress
      // resumes from the POLLOUT path, so this is NOT "pending work" for
      // the poll timeout — reporting it would busy-spin on a slow reader.
      return false;
    }
    bool have = false;
    try {
      have = c.in.next(payload);
    } catch (const FramingError&) {
      // The length prefix itself is unusable; there is no way to find the
      // next frame boundary, so the connection must die.
      m_protocol_errors_->add(0);
      c.dead = true;
      return false;
    }
    if (!have) return false;
    handle_payload(c, payload);
    c.last_active_ns = now_ns();
  }
  // Budget exhausted with bytes still buffered: ask the loop to come
  // straight back instead of parking in poll().
  return c.in.buffered() >= kFrameHeaderBytes;
}

void Server::queue(Conn& c, const std::vector<std::uint8_t>& payload) {
  append_frame(c.out, payload);
}

void Server::handle_payload(Conn& c,
                            const std::vector<std::uint8_t>& payload) {
  const std::uint64_t t0 = now_ns();
  m_frames_->add(0);

  FrameView f{0, MsgType::kPing, 0,
              WireReader(std::span<const std::uint8_t>())};
  try {
    f = parse_frame(payload);
  } catch (const Error& e) {
    m_protocol_errors_->add(0);
    queue(c, encode_error(0, ErrorCode::kMalformed, e.what()));
    return;
  }

  std::vector<std::uint8_t> resp;
  if (f.version != kServedProtocolVersion) {
    // The rest of the payload (including the request id) cannot be
    // trusted under an unknown layout: echo id 0, per the header contract.
    m_protocol_errors_->add(0);
    resp = encode_error(0, ErrorCode::kBadVersion,
                        "unsupported protocol version " +
                            std::to_string(f.version) + " (server speaks " +
                            std::to_string(kServedProtocolVersion) + ")");
  } else {
    try {
      switch (f.type) {
        case MsgType::kPing: {
          WireReader body = f.body;
          body.expect_done();
          resp = encode_pong(f.request_id);
          break;
        }
        case MsgType::kEstimate:
          resp = serve_estimate(f);
          break;
        case MsgType::kLocate:
          resp = serve_locate(f);
          break;
        case MsgType::kStats: {
          WireReader body = f.body;
          const bool prometheus = decode_stats_request(body);
          resp = encode_stats_result(f.request_id, metrics_text(prometheus));
          break;
        }
        case MsgType::kChurnAdmin:
          resp = serve_churn(f);
          break;
        case MsgType::kInfo:
          resp = serve_info(f);
          break;
        case MsgType::kShutdown: {
          WireReader body = f.body;
          body.expect_done();
          resp = encode_shutdown_ack(f.request_id);
          if (!stopping_) {
            stopping_ = true;
            stop_deadline_ = now_ns() + opts_.drain_timeout_ns;
          }
          break;
        }
        default:
          m_protocol_errors_->add(0);
          resp = encode_error(
              f.request_id, ErrorCode::kBadType,
              "unknown message type " +
                  std::to_string(static_cast<unsigned>(f.type)));
          break;
      }
    } catch (const BatchLimitError& e) {
      m_protocol_errors_->add(0);
      resp = encode_error(f.request_id, ErrorCode::kTooLarge, e.what());
    } catch (const Reject& r) {
      resp = encode_error(f.request_id, r.code, r.message);
    } catch (const Error& e) {
      // Body decode failure: truncated, garbled or trailing bytes.
      m_protocol_errors_->add(0);
      resp = encode_error(f.request_id, ErrorCode::kMalformed, e.what());
    } catch (const std::exception& e) {
      resp = encode_error(f.request_id, ErrorCode::kServer, e.what());
    }
  }
  queue(c, resp);
  m_frame_seconds_->record(0, static_cast<double>(now_ns() - t0) * 1e-9);
}

std::vector<std::uint8_t> Server::serve_estimate(const FrameView& f) {
  WireReader body = f.body;
  const std::vector<QueryPair> pairs =
      decode_estimate_request(body, opts_.max_batch);
  if (!state_.can_estimate()) {
    throw Reject{ErrorCode::kUnsupported,
                 "snapshot carries no distance labeling"};
  }
  const std::size_t n = state_.engine->n();
  for (const auto& [u, v] : pairs) {
    if (u >= n || v >= n) {
      throw Reject{ErrorCode::kBadRequest,
                   "estimate pair (" + std::to_string(u) + ", " +
                       std::to_string(v) + ") out of range for n = " +
                       std::to_string(n)};
    }
  }
  std::vector<Dist> dists;
  try {
    dists = state_.engine->estimate_batch(pairs);
  } catch (const std::exception& e) {
    throw Reject{ErrorCode::kServer, e.what()};
  }
  return encode_estimate_result(f.request_id, dists);
}

std::vector<std::uint8_t> Server::serve_locate(const FrameView& f) {
  WireReader body = f.body;
  const std::vector<LocateQuery> queries =
      decode_locate_request(body, opts_.max_batch);
  if (!state_.can_locate()) {
    throw Reject{ErrorCode::kUnsupported,
                 "snapshot carries no object-location overlay"};
  }
  const std::shared_ptr<const LocationEpoch> epoch =
      state_.engine->current_epoch();
  const ObjectDirectory* dir = epoch->directory.get();
  const std::size_t n = state_.engine->n();
  for (const auto& [querier, obj] : queries) {
    // Without a directory in the epoch (legacy borrowed services) the
    // object bound is unknowable here; the engine validates at dispatch.
    if (querier >= n ||
        (dir != nullptr && obj >= dir->num_objects())) {
      throw Reject{ErrorCode::kBadRequest,
                   "locate query (" + std::to_string(querier) + ", " +
                       std::to_string(obj) + ") out of range (n = " +
                       std::to_string(n) + ", objects = " +
                       std::to_string(dir != nullptr ? dir->num_objects()
                                                     : 0) +
                       ")"};
    }
  }

  // Zero-holder objects are a defined overlay state (churn can drain every
  // replica), not a batch poison: partition them out, walk the rest, and
  // answer per query. The pre-check and the batch see the same epoch —
  // this thread is the engine's only dispatcher AND the only admin
  // channel, so no swap can interleave.
  std::vector<ServedLocate> out(queries.size());
  std::vector<LocateQuery> servable;
  std::vector<std::size_t> slot;
  servable.reserve(queries.size());
  slot.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (dir != nullptr && dir->holders(queries[i].second).empty()) {
      out[i].status = LocateStatus::kZeroHolders;
      continue;
    }
    servable.push_back(queries[i]);
    slot.push_back(i);
  }
  if (!servable.empty()) {
    std::vector<LocateResult> results;
    try {
      results = state_.engine->locate_batch(servable);
    } catch (const std::exception& e) {
      throw Reject{ErrorCode::kServer, e.what()};
    }
    for (std::size_t j = 0; j < results.size(); ++j) {
      out[slot[j]] = ServedLocate{LocateStatus::kOk, results[j]};
    }
  }
  return encode_locate_result(f.request_id, out);
}

std::vector<std::uint8_t> Server::serve_churn(const FrameView& f) {
  WireReader body = f.body;
  if (!state_.can_churn()) {
    throw Reject{ErrorCode::kUnsupported,
                 "snapshot has no mutable overlay (serve a directory or "
                 "churn-bundle snapshot to enable the admin channel)"};
  }
  const ChurnTrace trace = decode_churn_request(body, state_.mutator->n());
  try {
    // A state-invalid op (join of an active node, unpublish of a copy that
    // is not there) throws mid-trace; ops before it HAVE been applied to
    // the pending overlay and will ride along with the next successful
    // commit. The serving epoch only ever advances on success.
    state_.mutator->apply(trace);
  } catch (const Error& e) {
    throw Reject{ErrorCode::kBadRequest, e.what()};
  }
  std::shared_ptr<const LocationEpoch> epoch = state_.mutator->commit();
  const std::uint64_t epoch_id = epoch->id;
  state_.engine->apply(std::move(epoch));
  m_epoch_swaps_->add(0);
  return encode_churn_result(
      f.request_id,
      ChurnResult{trace.ops.size(), epoch_id,
                  state_.mutator->active_count()});
}

std::vector<std::uint8_t> Server::serve_info(const FrameView& f) {
  WireReader body = f.body;
  body.expect_done();
  InfoResult info;
  info.n = state_.engine->n();
  info.has_labeling = state_.can_estimate();
  info.has_location = state_.can_locate();
  if (info.has_location) {
    const std::shared_ptr<const LocationEpoch> epoch =
        state_.engine->current_epoch();
    info.epoch_id = epoch->id;
    info.num_objects =
        epoch->directory != nullptr ? epoch->directory->num_objects() : 0;
  }
  info.hop_bound = location_hop_bound(state_.engine->n());
  return encode_info_result(f.request_id, info);
}

std::string Server::metrics_text(bool prometheus) const {
  std::vector<const MetricsRegistry*> registries{&metrics_,
                                                 &state_.engine->metrics()};
  if (state_.mutator != nullptr) registries.push_back(&state_.mutator->metrics());
  if (state_.builder != nullptr) registries.push_back(&state_.builder->metrics());
  std::ostringstream os;
  if (prometheus) {
    dump_metrics_prometheus(os, registries);
  } else {
    write_metrics_envelope(os, std::move(registries), nullptr);
  }
  return os.str();
}

void Server::close_all() {
  for (const auto& c : conns_) ::close(c->fd);
  if (!conns_.empty()) {
    m_disconnects_->add(0, conns_.size());
    conns_.clear();
  }
  m_connections_->set(0.0);
}

}  // namespace ron
