// Loadgen: multi-connection load generation against a ron_served daemon.
//
// N connections (one thread each) fire estimate or locate batches and
// measure per-frame round-trip latency. Two pacing modes:
//
//   closed loop (target_qps == 0): each connection keeps exactly one frame
//     in flight — send, wait, repeat, `frames` times. Measures the
//     serving path's best-case latency and the throughput one-at-a-time
//     clients reach.
//   open loop (target_qps > 0): each connection sends on a fixed schedule
//     (the aggregate target split evenly) for duration_ns, pipelining
//     frames without waiting — the arrival process does not slow down when
//     the server does, so queueing delay shows up in the latency tail
//     instead of being silently absorbed (the coordinated-omission trap).
//
// An optional admin thread drives the churn channel DURING the load: it
// applies publish-only traces (fresh object names at random nodes — always
// state-valid, and holder sets only grow, so concurrent locate answers
// stay servable) in chunks until churn_ops have landed, forcing live epoch
// swaps under traffic.
//
// Error frames and invalid answers are counted, not thrown: the report's
// errors/not_found columns are the acceptance evidence for "zero dropped
// or invalid answers under churn".
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "common/stats.h"

namespace ron {

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t connections = 4;
  /// Queries per frame.
  std::size_t batch = 64;
  /// Closed loop: frames per connection.
  std::size_t frames = 128;
  /// > 0 switches to open loop at this aggregate queries/sec.
  double target_qps = 0.0;
  /// Open loop: how long to keep sending.
  std::uint64_t duration_ns = 1'000'000'000;
  /// false = estimate workload, true = locate workload.
  bool locate = false;
  std::uint64_t seed = 7;
  /// Query-space sizes; 0 = discover via an info round trip.
  std::uint64_t n = 0;
  std::uint64_t num_objects = 0;
  /// > 0: apply this many churn ops through the admin channel while the
  /// load runs (publish-only, `churn_chunk` ops per admin frame).
  std::size_t churn_ops = 0;
  std::size_t churn_chunk = 16;
};

struct LoadgenReport {
  std::size_t connections = 0;
  std::size_t frames_sent = 0;
  std::size_t frames_answered = 0;
  std::size_t queries = 0;  // queries answered (not merely sent)
  /// Error frames received in place of results.
  std::size_t errors = 0;
  /// Locate answers: per-query unservable (zero holders) and walk-failed.
  std::size_t zero_holder = 0;
  std::size_t not_found = 0;
  /// Locate answers whose hop count exceeded the info frame's hop bound.
  std::size_t hop_bound_violations = 0;
  std::size_t churn_ops_applied = 0;
  std::size_t epoch_swaps = 0;
  std::uint64_t last_epoch_id = 0;
  double seconds = 0.0;  // wall time of the load phase
  double qps = 0.0;      // queries answered / seconds
  Summary frame_latency_seconds;

  /// Single-line JSON object (the bench artifact detail line).
  void to_json(std::ostream& os) const;
};

/// Runs the workload and returns the merged report. Throws ron::Error when
/// the server is unreachable or the workload cannot be synthesized (e.g. a
/// locate workload against an estimate-only snapshot).
LoadgenReport run_loadgen(const LoadgenOptions& opts);

}  // namespace ron
