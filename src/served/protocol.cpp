#include "served/protocol.h"

#include <limits>
#include <utility>

#include "churn/churn_trace.h"

namespace ron {

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::kPing: return "ping";
    case MsgType::kEstimate: return "estimate";
    case MsgType::kLocate: return "locate";
    case MsgType::kStats: return "stats";
    case MsgType::kChurnAdmin: return "churn-admin";
    case MsgType::kInfo: return "info";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kPong: return "pong";
    case MsgType::kEstimateResult: return "estimate-result";
    case MsgType::kLocateResult: return "locate-result";
    case MsgType::kStatsResult: return "stats-result";
    case MsgType::kChurnResult: return "churn-result";
    case MsgType::kInfoResult: return "info-result";
    case MsgType::kShutdownAck: return "shutdown-ack";
    case MsgType::kError: return "error";
  }
  return "unknown";
}

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadVersion: return "bad-version";
    case ErrorCode::kBadType: return "bad-type";
    case ErrorCode::kMalformed: return "malformed";
    case ErrorCode::kTooLarge: return "too-large";
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kServer: return "server";
  }
  return "unknown";
}

FrameView parse_frame(std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  const std::uint8_t version = r.u8();
  const auto type = static_cast<MsgType>(r.u8());
  const std::uint64_t request_id = r.u64();
  return FrameView{version, type, request_id, r};
}

void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload) {
  RON_CHECK(payload.size() <= std::numeric_limits<std::uint32_t>::max(),
            "served: frame payload of " << payload.size()
                                        << " bytes exceeds the u32 prefix");
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) {
    out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  out.insert(out.end(), payload.begin(), payload.end());
}

namespace {

/// Every payload starts with the same header; the builders below append
/// their body onto this.
WireWriter header(MsgType type, std::uint64_t request_id) {
  WireWriter w;
  w.u8(kServedProtocolVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(request_id);
  return w;
}

std::vector<std::uint8_t> take(WireWriter&& w) {
  return std::vector<std::uint8_t>(w.bytes().begin(), w.bytes().end());
}

}  // namespace

std::vector<std::uint8_t> encode_ping(std::uint64_t request_id) {
  return take(header(MsgType::kPing, request_id));
}

std::vector<std::uint8_t> encode_estimate_request(
    std::uint64_t request_id, std::span<const QueryPair> pairs) {
  WireWriter w = header(MsgType::kEstimate, request_id);
  w.u64(pairs.size());
  for (const auto& [u, v] : pairs) {
    w.u32(u);
    w.u32(v);
  }
  return take(std::move(w));
}

std::vector<std::uint8_t> encode_locate_request(
    std::uint64_t request_id, std::span<const LocateQuery> queries) {
  WireWriter w = header(MsgType::kLocate, request_id);
  w.u64(queries.size());
  for (const auto& [querier, obj] : queries) {
    w.u32(querier);
    w.u32(obj);
  }
  return take(std::move(w));
}

std::vector<std::uint8_t> encode_stats_request(std::uint64_t request_id,
                                               bool prometheus) {
  WireWriter w = header(MsgType::kStats, request_id);
  w.u8(prometheus ? 1 : 0);
  return take(std::move(w));
}

std::vector<std::uint8_t> encode_churn_request(std::uint64_t request_id,
                                               const ChurnTrace& trace) {
  WireWriter w = header(MsgType::kChurnAdmin, request_id);
  write_trace_payload(w, trace);
  return take(std::move(w));
}

std::vector<std::uint8_t> encode_info_request(std::uint64_t request_id) {
  return take(header(MsgType::kInfo, request_id));
}

std::vector<std::uint8_t> encode_shutdown_request(std::uint64_t request_id) {
  return take(header(MsgType::kShutdown, request_id));
}

std::vector<std::uint8_t> encode_pong(std::uint64_t request_id) {
  return take(header(MsgType::kPong, request_id));
}

std::vector<std::uint8_t> encode_estimate_result(
    std::uint64_t request_id, std::span<const Dist> dists) {
  WireWriter w = header(MsgType::kEstimateResult, request_id);
  w.u64(dists.size());
  for (const Dist d : dists) w.f64(d);
  return take(std::move(w));
}

std::vector<std::uint8_t> encode_locate_result(
    std::uint64_t request_id, std::span<const ServedLocate> results) {
  WireWriter w = header(MsgType::kLocateResult, request_id);
  w.u64(results.size());
  for (const ServedLocate& s : results) {
    w.u8(static_cast<std::uint8_t>(s.status));
    w.u8(s.result.found ? 1 : 0);
    w.u32(s.result.holder);
    w.u64(s.result.hops);
    w.f64(s.result.nearest_dist);
    w.f64(s.result.holder_dist);
    w.f64(s.result.path_length);
    w.f64(s.result.route_stretch);
    w.f64(s.result.distance_stretch);
  }
  return take(std::move(w));
}

std::vector<std::uint8_t> encode_stats_result(std::uint64_t request_id,
                                              const std::string& text) {
  WireWriter w = header(MsgType::kStatsResult, request_id);
  w.str(text);
  return take(std::move(w));
}

std::vector<std::uint8_t> encode_churn_result(std::uint64_t request_id,
                                              const ChurnResult& result) {
  WireWriter w = header(MsgType::kChurnResult, request_id);
  w.u64(result.ops_applied);
  w.u64(result.epoch_id);
  w.u64(result.active_count);
  return take(std::move(w));
}

std::vector<std::uint8_t> encode_info_result(std::uint64_t request_id,
                                             const InfoResult& info) {
  WireWriter w = header(MsgType::kInfoResult, request_id);
  w.u64(info.n);
  w.u8(info.has_labeling ? 1 : 0);
  w.u8(info.has_location ? 1 : 0);
  w.u64(info.num_objects);
  w.u64(info.epoch_id);
  w.u64(info.hop_bound);
  return take(std::move(w));
}

std::vector<std::uint8_t> encode_shutdown_ack(std::uint64_t request_id) {
  return take(header(MsgType::kShutdownAck, request_id));
}

std::vector<std::uint8_t> encode_error(std::uint64_t request_id,
                                       ErrorCode code,
                                       const std::string& message) {
  WireWriter w = header(MsgType::kError, request_id);
  w.u32(static_cast<std::uint32_t>(code));
  w.str(message);
  return take(std::move(w));
}

namespace {

/// Shared (count, per-element u32 pair) request decode for estimate and
/// locate bodies: the count is validated against the bytes present (lying
/// headers cannot size an allocation) AND against the server's batch limit.
template <typename Pair>
std::vector<Pair> decode_pair_request(WireReader& body, std::size_t max_batch,
                                      const char* what) {
  const std::uint64_t count = body.read_count(8, what);
  if (count > max_batch) {
    throw BatchLimitError("served: " + std::string(what) + " batch of " +
                          std::to_string(count) + " exceeds the limit of " +
                          std::to_string(max_batch));
  }
  std::vector<Pair> items;
  items.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint32_t first = body.u32();
    const std::uint32_t second = body.u32();
    items.emplace_back(first, second);
  }
  body.expect_done();
  return items;
}

}  // namespace

std::vector<QueryPair> decode_estimate_request(WireReader& body,
                                               std::size_t max_batch) {
  return decode_pair_request<QueryPair>(body, max_batch, "estimate query");
}

std::vector<LocateQuery> decode_locate_request(WireReader& body,
                                               std::size_t max_batch) {
  return decode_pair_request<LocateQuery>(body, max_batch, "locate query");
}

bool decode_stats_request(WireReader& body) {
  const std::uint8_t format = body.u8();
  body.expect_done();
  RON_CHECK(format <= 1, "served: unknown stats format " << int{format});
  return format == 1;
}

ChurnTrace decode_churn_request(WireReader& body, std::size_t n) {
  ChurnTrace trace = read_trace_payload(body, n);
  body.expect_done();
  return trace;
}

std::vector<Dist> decode_estimate_result(WireReader& body) {
  const std::uint64_t count = body.read_count(8, "estimate result");
  std::vector<Dist> dists;
  dists.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) dists.push_back(body.f64());
  body.expect_done();
  return dists;
}

std::vector<ServedLocate> decode_locate_result(WireReader& body) {
  const std::uint64_t count = body.read_count(54, "locate result");
  std::vector<ServedLocate> results;
  results.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    ServedLocate s;
    const std::uint8_t status = body.u8();
    RON_CHECK(status <= 1, "served: unknown locate status " << int{status});
    s.status = static_cast<LocateStatus>(status);
    const std::uint8_t found = body.u8();
    RON_CHECK(found <= 1, "served: locate found flag " << int{found});
    s.result.found = found == 1;
    s.result.holder = body.u32();
    s.result.hops = static_cast<std::size_t>(body.u64());
    s.result.nearest_dist = body.f64();
    s.result.holder_dist = body.f64();
    s.result.path_length = body.f64();
    s.result.route_stretch = body.f64();
    s.result.distance_stretch = body.f64();
    results.push_back(s);
  }
  body.expect_done();
  return results;
}

std::string decode_stats_result(WireReader& body) {
  std::string text = body.str();
  body.expect_done();
  return text;
}

ChurnResult decode_churn_result(WireReader& body) {
  ChurnResult r;
  r.ops_applied = body.u64();
  r.epoch_id = body.u64();
  r.active_count = body.u64();
  body.expect_done();
  return r;
}

InfoResult decode_info_result(WireReader& body) {
  InfoResult info;
  info.n = body.u64();
  const std::uint8_t has_labeling = body.u8();
  const std::uint8_t has_location = body.u8();
  RON_CHECK(has_labeling <= 1 && has_location <= 1,
            "served: info flag bytes " << int{has_labeling} << "/"
                                       << int{has_location});
  info.has_labeling = has_labeling == 1;
  info.has_location = has_location == 1;
  info.num_objects = body.u64();
  info.epoch_id = body.u64();
  info.hop_bound = body.u64();
  body.expect_done();
  return info;
}

std::pair<ErrorCode, std::string> decode_error(WireReader& body) {
  const auto code = static_cast<ErrorCode>(body.u32());
  std::string message = body.str();
  body.expect_done();
  return {code, std::move(message)};
}

void FrameAssembler::append(std::span<const std::uint8_t> bytes) {
  // Compact before growing: everything before pos_ is consumed, and
  // erasing it once per append keeps the buffer bounded by (one frame +
  // one recv worth) instead of growing with connection lifetime.
  if (pos_ > 0) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

bool FrameAssembler::next(std::vector<std::uint8_t>& payload) {
  if (buffered() < kFrameHeaderBytes) return false;
  std::uint32_t len = 0;
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) {
    len |= static_cast<std::uint32_t>(buf_[pos_ + i]) << (8 * i);
  }
  if (len > max_frame_bytes_) {
    throw FramingError("served: frame length prefix " + std::to_string(len) +
                       " exceeds the " + std::to_string(max_frame_bytes_) +
                       "-byte limit");
  }
  if (buffered() < kFrameHeaderBytes + len) return false;
  const auto begin =
      buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + kFrameHeaderBytes);
  payload.assign(begin, begin + static_cast<std::ptrdiff_t>(len));
  pos_ += kFrameHeaderBytes + len;
  return true;
}

}  // namespace ron
