#include "served/loadgen.h"

#include <poll.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <ostream>
#include <thread>
#include <utility>
#include <vector>

#include "churn/churn_trace.h"
#include "common/check.h"
#include "common/json.h"
#include "common/rng.h"
#include "served/client.h"
#include "telemetry/clock.h"

namespace ron {

namespace {

/// Per-thread tallies, merged after join (threads never share state).
struct WorkerTally {
  std::size_t frames_sent = 0;
  std::size_t frames_answered = 0;
  std::size_t queries = 0;
  std::size_t errors = 0;
  std::size_t zero_holder = 0;
  std::size_t not_found = 0;
  std::size_t hop_bound_violations = 0;
  std::vector<double> latency_seconds;
  std::string failure;  // non-empty when the worker died on an exception
};

struct Workload {
  bool locate = false;
  std::uint64_t n = 0;
  std::uint64_t num_objects = 0;
  std::uint64_t hop_bound = 0;
};

std::vector<std::uint8_t> encode_request(std::uint64_t id,
                                         const Workload& load,
                                         std::size_t batch, Rng& rng) {
  if (load.locate) {
    std::vector<LocateQuery> queries;
    queries.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      queries.emplace_back(
          static_cast<NodeId>(rng.index(load.n)),
          static_cast<ObjectId>(rng.index(load.num_objects)));
    }
    return encode_locate_request(id, queries);
  }
  std::vector<QueryPair> pairs;
  pairs.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    pairs.emplace_back(static_cast<NodeId>(rng.index(load.n)),
                       static_cast<NodeId>(rng.index(load.n)));
  }
  return encode_estimate_request(id, pairs);
}

/// Tallies one response payload against the workload's validity rules.
void tally_response(const std::vector<std::uint8_t>& payload,
                    const Workload& load, WorkerTally& tally) {
  FrameView f = parse_frame(payload);
  ++tally.frames_answered;
  if (f.type == MsgType::kError) {
    ++tally.errors;
    return;
  }
  if (load.locate) {
    const std::vector<ServedLocate> results = decode_locate_result(f.body);
    tally.queries += results.size();
    for (const ServedLocate& s : results) {
      if (s.status == LocateStatus::kZeroHolders) {
        ++tally.zero_holder;
      } else if (!s.result.found) {
        ++tally.not_found;
      } else if (s.result.hops > load.hop_bound) {
        ++tally.hop_bound_violations;
      }
    }
  } else {
    tally.queries += decode_estimate_result(f.body).size();
  }
}

void run_closed_loop(const LoadgenOptions& opts, const Workload& load,
                     std::size_t worker, WorkerTally& tally) {
  Client cli;
  cli.connect(opts.host, opts.port);
  Rng rng = Rng(opts.seed).fork(worker);
  for (std::size_t i = 0; i < opts.frames; ++i) {
    const std::uint64_t id = i + 1;
    const std::vector<std::uint8_t> request =
        encode_request(id, load, opts.batch, rng);
    const std::uint64_t t0 = real_now_ns();
    cli.send_frame(request);
    ++tally.frames_sent;
    const std::vector<std::uint8_t> response = cli.recv_frame();
    tally.latency_seconds.push_back(
        static_cast<double>(real_now_ns() - t0) * 1e-9);
    tally_response(response, load, tally);
  }
}

void run_open_loop(const LoadgenOptions& opts, const Workload& load,
                   std::size_t worker, WorkerTally& tally) {
  Client cli;
  cli.connect(opts.host, opts.port);
  Rng rng = Rng(opts.seed).fork(worker);
  const double frames_per_sec =
      opts.target_qps /
      (static_cast<double>(opts.batch) *
       static_cast<double>(opts.connections));
  RON_CHECK(frames_per_sec > 0.0, "loadgen: target qps "
                                      << opts.target_qps
                                      << " rounds to zero frames/sec");
  const auto interval_ns =
      static_cast<std::uint64_t>(1e9 / frames_per_sec);
  const std::uint64_t start = real_now_ns();
  const std::uint64_t end = start + opts.duration_ns;
  std::uint64_t next_send = start;
  std::uint64_t next_id = 1;
  std::deque<std::pair<std::uint64_t, std::uint64_t>> inflight;  // id, t0
  std::vector<std::uint8_t> payload;

  const auto drain_ready = [&] {
    while (cli.poll_frame(payload)) {
      RON_CHECK(!inflight.empty(),
                "loadgen: response with no request in flight");
      tally.latency_seconds.push_back(
          static_cast<double>(real_now_ns() - inflight.front().second) *
          1e-9);
      inflight.pop_front();
      tally_response(payload, load, tally);
    }
  };

  while (true) {
    const std::uint64_t now = real_now_ns();
    if (now >= end) break;
    if (now >= next_send) {
      // The schedule does not yield to a slow server (open loop). It DOES
      // bound pipelining depth so a stalled server turns into tail
      // latency, not an unbounded client heap.
      if (inflight.size() < 1024) {
        const std::uint64_t id = next_id++;
        cli.send_frame(encode_request(id, load, opts.batch, rng));
        inflight.emplace_back(id, real_now_ns());
        ++tally.frames_sent;
      }
      next_send += interval_ns;
      if (next_send < now) next_send = now;  // fell behind: don't burst
      continue;
    }
    drain_ready();
    const std::uint64_t wake = std::min(next_send, end);
    const std::uint64_t now2 = real_now_ns();
    if (wake > now2) {
      pollfd pfd{cli.fd(), POLLIN, 0};
      const int timeout_ms =
          static_cast<int>((wake - now2) / 1'000'000 + 1);
      const int ready = ::poll(&pfd, 1, timeout_ms);
      RON_CHECK(ready >= 0 || errno == EINTR,
                "loadgen: poll: " << std::strerror(errno));
    }
  }
  // Sending is over; collect every outstanding answer.
  while (!inflight.empty()) {
    payload = cli.recv_frame();
    tally.latency_seconds.push_back(
        static_cast<double>(real_now_ns() - inflight.front().second) *
        1e-9);
    inflight.pop_front();
    tally_response(payload, load, tally);
  }
}

/// The admin thread: publish-only churn in chunks through its own
/// connection. Fresh names at random nodes are always state-valid and only
/// grow holder sets, so the concurrent locate load stays fully servable.
void run_churn_admin(const LoadgenOptions& opts, const Workload& load,
                     WorkerTally& tally, std::size_t& ops_applied,
                     std::size_t& swaps, std::uint64_t& last_epoch) {
  Client cli;
  cli.connect(opts.host, opts.port);
  Rng rng = Rng(opts.seed).fork(0xad31);
  std::size_t seq = 0;
  while (ops_applied < opts.churn_ops) {
    const std::size_t chunk =
        std::min(opts.churn_chunk, opts.churn_ops - ops_applied);
    ChurnTrace trace;
    trace.objects.reserve(chunk);
    trace.ops.reserve(chunk);
    for (std::size_t i = 0; i < chunk; ++i) {
      trace.objects.push_back("lgadmin" + std::to_string(opts.seed) + "_" +
                              std::to_string(seq++));
      trace.ops.push_back(
          ChurnOp{ChurnOpKind::kPublish,
                  static_cast<NodeId>(rng.index(load.n)),
                  static_cast<ObjectId>(i)});
    }
    const ChurnResult result = cli.churn(trace);
    ops_applied += result.ops_applied;
    ++swaps;
    last_epoch = result.epoch_id;
  }
  (void)tally;
}

}  // namespace

void LoadgenReport::to_json(std::ostream& os) const {
  os << "{\"tool\":\"ron_loadgen\",\"connections\":" << connections
     << ",\"frames_sent\":" << frames_sent
     << ",\"frames_answered\":" << frames_answered
     << ",\"queries\":" << queries << ",\"errors\":" << errors
     << ",\"zero_holder\":" << zero_holder
     << ",\"not_found\":" << not_found
     << ",\"hop_bound_violations\":" << hop_bound_violations
     << ",\"churn_ops_applied\":" << churn_ops_applied
     << ",\"epoch_swaps\":" << epoch_swaps
     << ",\"last_epoch_id\":" << last_epoch_id << ",\"seconds\":";
  write_json_double(os, seconds);
  os << ",\"qps\":";
  write_json_double(os, qps);
  os << ",\"frame_latency_seconds\":" << frame_latency_seconds.to_json()
     << "}";
}

LoadgenReport run_loadgen(const LoadgenOptions& opts) {
  RON_CHECK(opts.connections >= 1, "loadgen: need at least one connection");
  RON_CHECK(opts.batch >= 1, "loadgen: need at least one query per frame");

  // Discover the query space (and fail fast on an unservable workload)
  // over a throwaway connection.
  Workload load;
  load.locate = opts.locate;
  load.n = opts.n;
  load.num_objects = opts.num_objects;
  {
    Client probe;
    probe.connect(opts.host, opts.port);
    const InfoResult info = probe.info();
    load.hop_bound = info.hop_bound;
    if (load.n == 0) load.n = info.n;
    if (opts.locate) {
      RON_CHECK(info.has_location,
                "loadgen: snapshot serves no locates (estimate-only)");
      if (load.num_objects == 0) load.num_objects = info.num_objects;
      RON_CHECK(load.num_objects > 0,
                "loadgen: directory has no objects to locate");
    } else {
      RON_CHECK(info.has_labeling,
                "loadgen: snapshot serves no estimates (locate-only)");
    }
    RON_CHECK(load.n > 0, "loadgen: server reports n = 0");
  }

  std::vector<WorkerTally> tallies(opts.connections);
  WorkerTally admin_tally;
  std::size_t churn_applied = 0;
  std::size_t epoch_swaps = 0;
  std::uint64_t last_epoch = 0;

  const std::uint64_t t0 = real_now_ns();
  std::vector<std::thread> threads;
  threads.reserve(opts.connections + 1);
  for (std::size_t w = 0; w < opts.connections; ++w) {
    threads.emplace_back([&, w] {
      try {
        if (opts.target_qps > 0.0) {
          run_open_loop(opts, load, w, tallies[w]);
        } else {
          run_closed_loop(opts, load, w, tallies[w]);
        }
      } catch (const std::exception& e) {
        tallies[w].failure = e.what();
      }
    });
  }
  if (opts.churn_ops > 0) {
    threads.emplace_back([&] {
      try {
        run_churn_admin(opts, load, admin_tally, churn_applied, epoch_swaps,
                        last_epoch);
      } catch (const std::exception& e) {
        admin_tally.failure = e.what();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = static_cast<double>(real_now_ns() - t0) * 1e-9;

  for (const WorkerTally& t : tallies) {
    RON_CHECK(t.failure.empty(), "loadgen worker failed: " << t.failure);
  }
  RON_CHECK(admin_tally.failure.empty(),
            "loadgen churn admin failed: " << admin_tally.failure);

  LoadgenReport report;
  report.connections = opts.connections;
  std::vector<double> latencies;
  for (WorkerTally& t : tallies) {
    report.frames_sent += t.frames_sent;
    report.frames_answered += t.frames_answered;
    report.queries += t.queries;
    report.errors += t.errors;
    report.zero_holder += t.zero_holder;
    report.not_found += t.not_found;
    report.hop_bound_violations += t.hop_bound_violations;
    latencies.insert(latencies.end(), t.latency_seconds.begin(),
                     t.latency_seconds.end());
  }
  report.churn_ops_applied = churn_applied;
  report.epoch_swaps = epoch_swaps;
  report.last_epoch_id = last_epoch;
  report.seconds = seconds;
  report.qps = seconds > 0.0
                   ? static_cast<double>(report.queries) / seconds
                   : 0.0;
  report.frame_latency_seconds = summarize(std::move(latencies));
  return report;
}

}  // namespace ron
