// Client: a blocking connection to a ron_served daemon.
//
// The socket is blocking on purpose — callers are tools and tests that
// want straight-line round trips, not an event loop. Partial send()/recv()
// and EINTR are still the normal case and handled here (send loops with
// MSG_NOSIGNAL; recv feeds a FrameAssembler until a whole frame is out),
// so callers only ever see whole payloads or ron::Error.
//
// Two layers:
//   - frame I/O: send_frame / recv_frame move raw payloads. Pipelining
//     clients (the loadgen) use these directly and match responses to
//     requests by the echoed request id.
//   - typed round trips: estimate() / locate() / churn() / ... send one
//     request, wait for its response, and decode it. A kError response
//     surfaces as ron::Error carrying the server's code and message.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "served/protocol.h"

namespace ron {

class Client {
 public:
  /// `max_frame_bytes` bounds the response payload this client will accept
  /// before declaring the stream broken.
  explicit Client(std::size_t max_frame_bytes = 64u << 20)
      : in_(max_frame_bytes) {}
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  /// Movable so factories can hand out connected clients by value.
  Client(Client&& other) noexcept
      : fd_(other.fd_), next_id_(other.next_id_), in_(std::move(other.in_)) {
    other.fd_ = -1;
  }
  Client& operator=(Client&&) = delete;

  /// Connects to host:port (IPv4 literal). Throws ron::Error on failure.
  void connect(const std::string& host, std::uint16_t port);
  void close();
  bool connected() const { return fd_ >= 0; }
  /// The connection's fd, for callers that poll (the open-loop loadgen).
  int fd() const { return fd_; }

  /// Next request id this client will stamp (ids increase by one per
  /// encoded request; responses echo them).
  std::uint64_t next_request_id() const { return next_id_; }

  // --- frame layer ---------------------------------------------------------

  /// Frames and sends `payload`, handling partial writes and EINTR.
  void send_frame(std::span<const std::uint8_t> payload);
  /// Sends bytes with NO framing — the malformed/truncated-frame tests'
  /// hammer (a correct client never needs it).
  void send_raw(std::span<const std::uint8_t> bytes);
  /// Blocks until one whole payload arrives. Throws ron::Error on EOF or
  /// stream error.
  std::vector<std::uint8_t> recv_frame();
  /// Drains whatever is readable without blocking and returns true when a
  /// whole payload was extracted (for pipelined/open-loop callers between
  /// sends). Throws ron::Error on EOF or stream error.
  bool poll_frame(std::vector<std::uint8_t>& payload);

  // --- typed round trips ---------------------------------------------------

  void ping();
  std::vector<Dist> estimate(std::span<const QueryPair> pairs);
  std::vector<ServedLocate> locate(std::span<const LocateQuery> queries);
  std::string stats(bool prometheus);
  ChurnResult churn(const ChurnTrace& trace);
  InfoResult info();
  /// Requests a graceful server drain-and-exit and waits for the ack.
  void shutdown_server();

 private:
  /// Sends `request` and blocks for the frame echoing its id; throws the
  /// decoded error for kError responses, checks the type otherwise.
  FrameView round_trip(const std::vector<std::uint8_t>& request,
                       std::uint64_t request_id, MsgType expect,
                       std::vector<std::uint8_t>& storage);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  FrameAssembler in_;
};

/// Raises ron::Error describing a kError payload (code + server message).
/// Exposed for callers that decode frames themselves.
[[noreturn]] void throw_error_frame(WireReader body);

}  // namespace ron
