// ServedState: any servable snapshot loaded into an engine the daemon can
// put on the wire.
//
// ron_served accepts the same snapshot kinds ron_oracle serves:
//
//   kOracle / kDistanceLabeling   estimate serving (no locate, no churn)
//   kObjectDirectory              locate serving over the rebuilt overlay
//   kChurnBundle                  locate serving over the replayed trace
//
// With the dense backend (the default) the two locate kinds go through an
// OverlayMutator, even when the snapshot carries no churn: the daemon's
// admin channel feeds further ChurnTrace ops through
// OverlayMutator::apply + commit() and swaps the resulting LocationEpoch
// into the live engine with OracleEngine::apply — zero-downtime epoch
// swaps under live traffic. Building the mutator up front (bit-identical
// to the static ScenarioBuilder overlay) means a directory snapshot is
// churnable from frame one, not a special case. Under the sparse backend
// (the million-node serving mode) the mutator — which needs full distance
// rows — is skipped and the directory is served as one static epoch.
//
// kRings / kNeighborSystem snapshots are construction artifacts with no
// query surface; loading one throws ron::Error.
#pragma once

#include <memory>
#include <string>

#include "churn/overlay_mutator.h"
#include "metric/sparse_proximity.h"
#include "oracle/engine.h"
#include "scenario/scenario_builder.h"

namespace ron {

struct ServedStateOptions {
  /// Engine pool/cache/clock configuration (served batches run through the
  /// same worker machinery as ron_oracle's).
  OracleOptions engine;
  /// Walk configuration, fixed per engine (cached results must never
  /// reflect a different configuration).
  LocateOptions locate;
  /// ScenarioBuilder threads for the overlay rebuild at load time.
  unsigned build_threads = 1;
  /// Proximity backend for the overlay rebuild. Dense (the default) keeps
  /// directory snapshots churnable through the admin channel; sparse (or
  /// auto above the cutoff) serves static locate at scales where dense
  /// rows cannot exist — the mutator is skipped and admin churn is
  /// rejected. Churn bundles always need dense (the replay walks full
  /// rows), so a sparse rebuild of one throws the mutator's named error.
  ProxBackend backend = ProxBackend::kDense;
};

/// Declaration order is the lifetime order: the builder owns the metric the
/// mutator borrows, and both outlive the engine serving their epochs.
struct ServedState {
  std::unique_ptr<ScenarioBuilder> builder;  // null for estimate snapshots
  std::unique_ptr<OverlayMutator> mutator;   // null for estimate snapshots
  std::unique_ptr<OracleEngine> engine;      // never null after load

  bool can_estimate() const { return engine->has_labeling(); }
  bool can_locate() const { return engine->has_location(); }
  /// The admin channel needs a mutator to extend the overlay's history.
  bool can_churn() const { return mutator != nullptr; }
};

/// Loads `path` into serving state (see the kind table above). Throws
/// ron::Error for unreadable/corrupt files and unservable kinds.
ServedState load_served_state(const std::string& path,
                              const ServedStateOptions& opts);

}  // namespace ron
