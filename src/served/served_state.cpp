#include "served/served_state.h"

#include <utility>

#include "common/check.h"
#include "oracle/snapshot.h"

namespace ron {

namespace {

/// Overlay serving state for a directory or churn bundle: rebuild the
/// static overlay from the embedded recipe, replay any stored trace, and
/// commit the first epoch. Mirrors ron_oracle's load path, except the
/// mutator is unconditional so the admin channel can keep mutating.
ServedState load_overlay(const std::string& path, SnapshotKind kind,
                         const ServedStateOptions& opts) {
  ServedState state;
  ScenarioSpec spec;
  ObjectDirectory initial(1);
  ChurnTrace trace;
  if (kind == SnapshotKind::kChurnBundle) {
    LoadedChurnBundle bundle = load_churn_bundle(path);
    spec = std::move(bundle.spec);
    initial = std::move(bundle.initial);
    trace = std::move(bundle.trace);
  } else {
    LoadedDirectory loaded = load_directory(path);
    spec = std::move(loaded.spec);
    initial = std::move(loaded.directory);
  }
  state.builder =
      std::make_unique<ScenarioBuilder>(spec, opts.build_threads,
                                        opts.backend);
  RON_CHECK(state.builder->n() == initial.n(),
            "served: scenario rebuilds n = "
                << state.builder->n() << ", snapshot directory has n = "
                << initial.n());
  if (state.builder->sparse_backend() &&
      kind != SnapshotKind::kChurnBundle) {
    // Million-node serving mode: no mutator (it needs full distance rows),
    // one static epoch over the compact sealed rings. A churn bundle falls
    // through to the mutator below so its replay requirement surfaces as
    // the mutator's named error rather than silently skipping the trace.
    auto epoch = std::make_shared<LocationEpoch>();
    epoch->id = 1;
    auto directory =
        std::make_shared<const ObjectDirectory>(std::move(initial));
    epoch->service = std::make_shared<const LocationService>(
        state.builder->prox(), state.builder->rings(), *directory);
    epoch->directory = std::move(directory);
    state.engine = std::make_unique<OracleEngine>(std::move(epoch),
                                                  opts.engine, opts.locate);
    return state;
  }
  state.mutator = std::make_unique<OverlayMutator>(
      state.builder->prox(), state.builder->spec(), std::move(initial),
      opts.engine.clock);
  if (!trace.ops.empty()) state.mutator->apply(trace);
  state.engine = std::make_unique<OracleEngine>(state.mutator->commit(),
                                                opts.engine, opts.locate);
  return state;
}

}  // namespace

ServedState load_served_state(const std::string& path,
                              const ServedStateOptions& opts) {
  // Header peek picks the load path; the follow-up load performs the real
  // validation (magic, checksum, bounds) — same pattern as ron_oracle.
  const auto kind = static_cast<SnapshotKind>(peek_snapshot_kind(path));
  switch (kind) {
    case SnapshotKind::kOracle: {
      ServedState state;
      state.engine = std::make_unique<OracleEngine>(
          load_oracle(path).labeling, opts.engine);
      return state;
    }
    case SnapshotKind::kDistanceLabeling: {
      ServedState state;
      state.engine =
          std::make_unique<OracleEngine>(load_labeling(path), opts.engine);
      return state;
    }
    case SnapshotKind::kObjectDirectory:
    case SnapshotKind::kChurnBundle:
      return load_overlay(path, kind, opts);
    case SnapshotKind::kRings:
    case SnapshotKind::kNeighborSystem:
      RON_CHECK(false, "served: snapshot '"
                           << path << "' (kind "
                           << static_cast<std::uint32_t>(kind)
                           << ") is a construction artifact with no query "
                              "surface — serve an oracle, labeling, "
                              "directory or churn-bundle snapshot");
  }
  // Unknown kind byte: run the full validation for the real error message
  // (bad magic, truncation, wrong checksum, ...).
  inspect_snapshot(path);
  RON_CHECK(false, "served: snapshot '"
                       << path << "' has unservable kind "
                       << static_cast<std::uint32_t>(kind));
  return {};  // unreachable
}

}  // namespace ron
