// Server: the ron_served daemon's poll(2) event loop.
//
// One thread runs the loop; the engine's worker pool is the parallelism
// (batches submitted from the loop fan out across the pool and return
// before the next frame is touched — the engine's single-dispatcher
// contract holds by construction). Everything socket-shaped in the repo
// lives in src/served/ (tools/ron_lint.py enforces it): tools and tests
// talk to Server/Client, never to recv(2).
//
// Robustness contract, per connection:
//   - non-blocking sockets with per-connection reassembly buffers
//     (FrameAssembler) and send buffers; partial reads and writes are the
//     normal case, EINTR is retried, sends use MSG_NOSIGNAL (a dead peer
//     surfaces as EPIPE, never SIGPIPE).
//   - a malformed-but-framed payload gets an error frame and the
//     connection lives on; a broken frame layer (oversized length prefix)
//     or a batch of unflushable responses beyond drop_outbuf_bytes kills
//     only that connection. The daemon itself never dies on client bytes.
//   - backpressure: a client whose responses pile up past
//     max_outbuf_bytes stops being READ (its POLLIN is withdrawn) until
//     the backlog drains — a slow reader throttles itself, not the server.
//   - fairness: at most max_frames_per_cycle frames are served per
//     connection per loop iteration, so one pipelining firehose cannot
//     starve its neighbors.
//   - idle connections are closed after idle_timeout_ns (0 = never).
//
// stop() is async-signal-safe (one write(2) to a self-pipe), so SIGINT/
// SIGTERM handlers can request a graceful drain: the loop stops accepting,
// flushes what it can within drain_timeout_ns, and returns.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "served/protocol.h"
#include "served/served_state.h"
#include "telemetry/clock.h"
#include "telemetry/metrics.h"

namespace ron {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port; start() returns the bound port.
  std::uint16_t port = 0;
  int backlog = 64;
  std::size_t max_connections = 64;
  /// Largest payload a peer may announce; beyond it the connection drops
  /// (FramingError — there is no next frame boundary to resync to).
  std::size_t max_frame_bytes = 1u << 20;
  /// Largest query batch per frame (kTooLarge error frame above it).
  std::size_t max_batch = 1u << 16;
  /// Unsent-response backlog beyond which the connection stops being read.
  std::size_t max_outbuf_bytes = 4u << 20;
  /// Unsent-response backlog beyond which the connection is dropped
  /// outright (a peer that neither reads nor disconnects cannot hold
  /// server memory forever).
  std::size_t drop_outbuf_bytes = 64u << 20;
  /// Frames served per connection per loop iteration.
  std::size_t max_frames_per_cycle = 8;
  /// 0 = never time out idle connections.
  std::uint64_t idle_timeout_ns = 0;
  /// Grace period for flushing responses after stop()/shutdown.
  std::uint64_t drain_timeout_ns = 1'000'000'000;
  /// Timing source (borrowed, must outlive the server); null = real clock.
  const Clock* clock = nullptr;
};

class Server {
 public:
  /// `state` is borrowed and must outlive the server; the server is its
  /// engine's sole dispatcher while run() executes.
  Server(ServedState& state, ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens; returns the bound port (the ephemeral one when
  /// options.port was 0). Call once, before run().
  std::uint16_t start();

  /// Runs the event loop until stop() or a shutdown frame, then drains and
  /// closes every connection. Call from one thread.
  void run();

  /// Requests a graceful drain-and-exit. Async-signal-safe and callable
  /// from any thread (also before run(), which then exits immediately).
  void stop();

  std::uint16_t port() const { return port_; }

  /// ron_served_* metrics: connections gauge, accept/frame/byte/protocol-
  /// error counters, per-frame serving latency histogram.
  const MetricsRegistry& metrics() const { return metrics_; }

  /// The stats-frame / --metrics-out document: the ron.metrics.v1 JSON
  /// envelope (or prometheus exposition) over every registry behind this
  /// server — its own, the engine's, and the mutator's/builder's when the
  /// snapshot has an overlay.
  std::string metrics_text(bool prometheus) const;

 private:
  struct Conn;

  void accept_ready();
  /// Returns false when the connection died (peer closed, framing broken).
  bool read_ready(Conn& c);
  bool flush_out(Conn& c);
  /// Serves up to max_frames_per_cycle buffered frames.
  bool process_frames(Conn& c);
  void handle_payload(Conn& c, const std::vector<std::uint8_t>& payload);
  std::vector<std::uint8_t> serve_estimate(const FrameView& f);
  std::vector<std::uint8_t> serve_locate(const FrameView& f);
  std::vector<std::uint8_t> serve_churn(const FrameView& f);
  std::vector<std::uint8_t> serve_info(const FrameView& f);
  void queue(Conn& c, const std::vector<std::uint8_t>& payload);
  void close_all();
  std::uint64_t now_ns() const { return clock_->now_ns(); }

  ServedState& state_;
  ServerOptions opts_;
  const Clock* clock_;  // never null after construction

  int listen_fd_ = -1;
  int wake_rd_ = -1;  // self-pipe: stop() writes, the loop reads
  int wake_wr_ = -1;
  std::uint16_t port_ = 0;
  bool stopping_ = false;
  std::uint64_t stop_deadline_ = 0;  // drain cutoff once stopping_
  std::vector<std::unique_ptr<Conn>> conns_;

  MetricsRegistry metrics_{1};
  Gauge* m_connections_;
  Counter* m_accepts_;
  Counter* m_disconnects_;
  Counter* m_idle_closes_;
  Counter* m_frames_;
  Counter* m_bytes_in_;
  Counter* m_bytes_out_;
  Counter* m_protocol_errors_;
  Counter* m_backpressure_pauses_;
  Counter* m_epoch_swaps_;
  Histogram* m_frame_seconds_;
};

}  // namespace ron
