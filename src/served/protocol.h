// The ron_served wire protocol: length-prefixed frames over TCP, payloads
// parsed through the snapshot layer's bounds-checked WireReader/WireWriter.
//
// One framing layer, not two. A frame is
//
//   [u32 payload length, little-endian] [payload bytes]
//
// and every payload starts with
//
//   [u8 protocol version] [u8 message type] [u64 request id] [body ...]
//
// The body of every message kind is encoded with the same WireWriter and
// decoded with the same WireReader the snapshot format uses — the cursor
// the snapshot fuzzer already hammers — so a truncated, garbled or
// malicious frame surfaces as ron::Error at a validated boundary, never as
// UB or an unbounded allocation. Clients are untrusted peers: the server
// answers a malformed-but-framed payload with an error frame and keeps the
// connection, and drops the connection only when framing itself is broken
// (an oversized length prefix — there is no way to find the next frame
// boundary after that).
//
// Versioning rules: the version byte travels in EVERY payload. A server
// answers a frame whose version it does not speak with kError/kErrBadVersion
// (echoing request id 0, since the rest of the payload cannot be trusted)
// and keeps the connection — a future v2 client can therefore downgrade per
// connection after one round trip. Message types, field orders and widths
// within version 1 are frozen; new fields or kinds require bumping the
// version byte. The request id is opaque to the server and echoed verbatim
// in the response, so clients may pipeline frames and match answers by id
// (the server additionally answers frames of one connection in order).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "oracle/engine.h"
#include "oracle/wire.h"

namespace ron {

struct ChurnTrace;

inline constexpr std::uint8_t kServedProtocolVersion = 1;

/// Frame length prefix width (the only bytes outside WireReader's domain).
inline constexpr std::size_t kFrameHeaderBytes = 4;

enum class MsgType : std::uint8_t {
  // Requests.
  kPing = 1,
  kEstimate = 2,       // body: count, then (u32 source, u32 target) pairs
  kLocate = 3,         // body: count, then (u32 querier, u32 object) pairs
  kStats = 4,          // body: u8 format (0 = json envelope, 1 = prometheus)
  kChurnAdmin = 5,     // body: a ChurnTrace payload (churn_trace.h encoding)
  kInfo = 6,           // body: empty
  kShutdown = 7,       // body: empty; server acks, flushes and stops

  // Responses (request type + 64).
  kPong = 65,
  kEstimateResult = 66,  // body: count, then f64 estimates
  kLocateResult = 67,    // body: count, then ServedLocate records
  kStatsResult = 68,     // body: str (JSON envelope or prometheus text)
  kChurnResult = 69,     // body: u64 ops applied, u64 epoch id, u64 active
  kInfoResult = 70,      // body: InfoResult fields
  kShutdownAck = 71,
  kError = 72,           // body: u32 code, str message
};

enum class ErrorCode : std::uint32_t {
  kBadVersion = 1,   // unknown protocol version byte
  kBadType = 2,      // unknown message type byte
  kMalformed = 3,    // body failed to parse (truncated/garbled/trailing)
  kTooLarge = 4,     // batch count above the server's limit
  kBadRequest = 5,   // parsed fine, semantically invalid (id out of range)
  kUnsupported = 6,  // snapshot/state cannot serve this request kind
  kServer = 7,       // engine-side failure while serving
};

const char* to_string(MsgType type);
const char* to_string(ErrorCode code);

/// Framing violation: the length prefix itself is unusable (oversized), so
/// the connection cannot be resynchronized and must be dropped. Distinct
/// from ron::Error so the server can tell "drop the client" from "answer
/// an error frame and continue".
class FramingError : public Error {
 public:
  using Error::Error;
};

/// A well-formed request whose batch count exceeds the server's limit.
/// Distinct from plain ron::Error so the server can answer kTooLarge
/// (client should split the batch) instead of kMalformed (client bug).
class BatchLimitError : public Error {
 public:
  using Error::Error;
};

/// Per-query locate status: the serving layer distinguishes "the walk ran"
/// from "this query was unservable in the epoch that answered it" (a
/// zero-holder object drained by churn is a defined state, not a batch
/// poison — see object_directory.h).
enum class LocateStatus : std::uint8_t {
  kOk = 0,
  kZeroHolders = 1,
};

struct ServedLocate {
  LocateStatus status = LocateStatus::kOk;
  LocateResult result;

  friend bool operator==(const ServedLocate&, const ServedLocate&) = default;
};

struct InfoResult {
  std::uint64_t n = 0;
  bool has_labeling = false;
  bool has_location = false;
  std::uint64_t num_objects = 0;
  std::uint64_t epoch_id = 0;
  std::uint64_t hop_bound = 0;

  friend bool operator==(const InfoResult&, const InfoResult&) = default;
};

struct ChurnResult {
  std::uint64_t ops_applied = 0;
  std::uint64_t epoch_id = 0;
  std::uint64_t active_count = 0;

  friend bool operator==(const ChurnResult&, const ChurnResult&) = default;
};

/// A parsed payload header plus a cursor positioned at the body. The
/// referenced bytes must outlive the view (it is a WireReader).
struct FrameView {
  std::uint8_t version = 0;
  MsgType type = MsgType::kPing;
  std::uint64_t request_id = 0;
  WireReader body;
};

/// Parses [version][type][request id] and leaves `body` at the first body
/// byte. Throws ron::Error when the payload is shorter than the header.
/// Does NOT validate version or type — the server answers those with
/// protocol error frames rather than exceptions.
FrameView parse_frame(std::span<const std::uint8_t> payload);

/// Appends [u32 length][payload] to `out`. Throws ron::Error when the
/// payload exceeds the u32 length domain.
void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload);

// --- payload builders (request id is echoed by the server) -----------------

std::vector<std::uint8_t> encode_ping(std::uint64_t request_id);
std::vector<std::uint8_t> encode_estimate_request(
    std::uint64_t request_id, std::span<const QueryPair> pairs);
std::vector<std::uint8_t> encode_locate_request(
    std::uint64_t request_id, std::span<const LocateQuery> queries);
std::vector<std::uint8_t> encode_stats_request(std::uint64_t request_id,
                                               bool prometheus);
std::vector<std::uint8_t> encode_churn_request(std::uint64_t request_id,
                                               const ChurnTrace& trace);
std::vector<std::uint8_t> encode_info_request(std::uint64_t request_id);
std::vector<std::uint8_t> encode_shutdown_request(std::uint64_t request_id);

std::vector<std::uint8_t> encode_pong(std::uint64_t request_id);
std::vector<std::uint8_t> encode_estimate_result(std::uint64_t request_id,
                                                 std::span<const Dist> dists);
std::vector<std::uint8_t> encode_locate_result(
    std::uint64_t request_id, std::span<const ServedLocate> results);
std::vector<std::uint8_t> encode_stats_result(std::uint64_t request_id,
                                              const std::string& text);
std::vector<std::uint8_t> encode_churn_result(std::uint64_t request_id,
                                              const ChurnResult& result);
std::vector<std::uint8_t> encode_info_result(std::uint64_t request_id,
                                             const InfoResult& info);
std::vector<std::uint8_t> encode_shutdown_ack(std::uint64_t request_id);
std::vector<std::uint8_t> encode_error(std::uint64_t request_id,
                                       ErrorCode code,
                                       const std::string& message);

// --- body decoders (throw ron::Error on malformed bytes) -------------------
// Each consumes the body cursor exactly (expect_done), so trailing garbage
// in a request is a protocol error, mirroring the snapshot loaders.

/// `max_batch` bounds the decoded count (kTooLarge is the server's answer
/// above it; the count is additionally bounds-checked against the bytes
/// actually present, so a lying header cannot size an allocation).
std::vector<QueryPair> decode_estimate_request(WireReader& body,
                                               std::size_t max_batch);
std::vector<LocateQuery> decode_locate_request(WireReader& body,
                                               std::size_t max_batch);
bool decode_stats_request(WireReader& body);  // true = prometheus
ChurnTrace decode_churn_request(WireReader& body, std::size_t n);

std::vector<Dist> decode_estimate_result(WireReader& body);
std::vector<ServedLocate> decode_locate_result(WireReader& body);
std::string decode_stats_result(WireReader& body);
ChurnResult decode_churn_result(WireReader& body);
InfoResult decode_info_result(WireReader& body);
/// Returns (code, message).
std::pair<ErrorCode, std::string> decode_error(WireReader& body);

/// Reassembles length-prefixed frames from a nonblocking byte stream: the
/// server appends whatever recv() yielded and pulls out complete payloads.
/// Bytes are consumed lazily (one compaction per drained buffer, not one
/// memmove per frame).
class FrameAssembler {
 public:
  /// `max_frame_bytes` bounds the PAYLOAD length a peer may announce;
  /// next() throws FramingError beyond it (resynchronization is
  /// impossible, the connection must die).
  explicit FrameAssembler(std::size_t max_frame_bytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void append(std::span<const std::uint8_t> bytes);

  /// Moves the next complete payload into `payload` and returns true, or
  /// returns false when no complete frame is buffered yet.
  bool next(std::vector<std::uint8_t>& payload);

  /// Unconsumed buffered bytes (partial frame + not-yet-parsed frames).
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::size_t max_frame_bytes_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace ron
