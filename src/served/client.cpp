#include "served/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "churn/churn_trace.h"

namespace ron {

Client::~Client() { close(); }

void Client::connect(const std::string& host, std::uint16_t port) {
  RON_CHECK(fd_ < 0, "client: already connected");
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  RON_CHECK(fd >= 0, "client: socket: " << std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    RON_CHECK(false, "client: host '" << host
                                      << "' is not an IPv4 address literal");
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const int err = errno;
    ::close(fd);
    RON_CHECK(false, "client: connect " << host << ":" << port << ": "
                                        << std::strerror(err));
  }
  fd_ = fd;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send_frame(std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> framed;
  framed.reserve(kFrameHeaderBytes + payload.size());
  append_frame(framed, payload);
  send_raw(framed);
}

void Client::send_raw(std::span<const std::uint8_t> bytes) {
  RON_CHECK(fd_ >= 0, "client: send on a closed connection");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t put = ::send(fd_, bytes.data() + sent,
                               bytes.size() - sent, MSG_NOSIGNAL);
    if (put > 0) {
      sent += static_cast<std::size_t>(put);
      continue;
    }
    if (errno == EINTR) continue;
    RON_CHECK(false, "client: send: " << std::strerror(errno));
  }
}

std::vector<std::uint8_t> Client::recv_frame() {
  RON_CHECK(fd_ >= 0, "client: recv on a closed connection");
  std::vector<std::uint8_t> payload;
  std::uint8_t buf[64 * 1024];
  while (true) {
    if (in_.next(payload)) return payload;
    const ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
    if (got > 0) {
      in_.append({buf, static_cast<std::size_t>(got)});
      continue;
    }
    if (got == 0) {
      RON_CHECK(false, "client: server closed the connection ("
                           << in_.buffered() << " bytes of a partial frame "
                           << "buffered)");
    }
    if (errno == EINTR) continue;
    RON_CHECK(false, "client: recv: " << std::strerror(errno));
  }
}

bool Client::poll_frame(std::vector<std::uint8_t>& payload) {
  RON_CHECK(fd_ >= 0, "client: recv on a closed connection");
  if (in_.next(payload)) return true;
  std::uint8_t buf[64 * 1024];
  while (true) {
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 0);
    if (ready < 0) {
      if (errno == EINTR) continue;
      RON_CHECK(false, "client: poll: " << std::strerror(errno));
    }
    if (ready == 0) return false;
    const ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
    if (got > 0) {
      in_.append({buf, static_cast<std::size_t>(got)});
      if (in_.next(payload)) return true;
      continue;
    }
    if (got == 0) {
      RON_CHECK(false, "client: server closed the connection mid-stream");
    }
    if (errno == EINTR) continue;
    RON_CHECK(false, "client: recv: " << std::strerror(errno));
  }
}

void throw_error_frame(WireReader body) {
  const auto [code, message] = decode_error(body);
  RON_CHECK(false,
            "server error [" << to_string(code) << "]: " << message);
}

FrameView Client::round_trip(const std::vector<std::uint8_t>& request,
                             std::uint64_t request_id, MsgType expect,
                             std::vector<std::uint8_t>& storage) {
  send_frame(request);
  // Responses come back in request order per connection; a mismatched id
  // means this client's bookkeeping and the server disagree — fatal.
  storage = recv_frame();
  FrameView f = parse_frame(storage);
  RON_CHECK(f.version == kServedProtocolVersion,
            "client: response speaks protocol version "
                << unsigned{f.version} << ", expected "
                << unsigned{kServedProtocolVersion});
  if (f.type == MsgType::kError) throw_error_frame(f.body);
  RON_CHECK(f.request_id == request_id,
            "client: response echoes request id "
                << f.request_id << ", expected " << request_id);
  RON_CHECK(f.type == expect, "client: response type "
                                  << to_string(f.type) << ", expected "
                                  << to_string(expect));
  return f;
}

void Client::ping() {
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> storage;
  FrameView f = round_trip(encode_ping(id), id, MsgType::kPong, storage);
  f.body.expect_done();
}

std::vector<Dist> Client::estimate(std::span<const QueryPair> pairs) {
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> storage;
  FrameView f = round_trip(encode_estimate_request(id, pairs), id,
                           MsgType::kEstimateResult, storage);
  std::vector<Dist> dists = decode_estimate_result(f.body);
  RON_CHECK(dists.size() == pairs.size(),
            "client: " << dists.size() << " estimates for " << pairs.size()
                       << " queries");
  return dists;
}

std::vector<ServedLocate> Client::locate(
    std::span<const LocateQuery> queries) {
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> storage;
  FrameView f = round_trip(encode_locate_request(id, queries), id,
                           MsgType::kLocateResult, storage);
  std::vector<ServedLocate> results = decode_locate_result(f.body);
  RON_CHECK(results.size() == queries.size(),
            "client: " << results.size() << " locate results for "
                       << queries.size() << " queries");
  return results;
}

std::string Client::stats(bool prometheus) {
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> storage;
  FrameView f = round_trip(encode_stats_request(id, prometheus), id,
                           MsgType::kStatsResult, storage);
  return decode_stats_result(f.body);
}

ChurnResult Client::churn(const ChurnTrace& trace) {
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> storage;
  FrameView f = round_trip(encode_churn_request(id, trace), id,
                           MsgType::kChurnResult, storage);
  return decode_churn_result(f.body);
}

InfoResult Client::info() {
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> storage;
  FrameView f = round_trip(encode_info_request(id), id,
                           MsgType::kInfoResult, storage);
  return decode_info_result(f.body);
}

void Client::shutdown_server() {
  const std::uint64_t id = next_id_++;
  std::vector<std::uint8_t> storage;
  FrameView f = round_trip(encode_shutdown_request(id), id,
                           MsgType::kShutdownAck, storage);
  f.body.expect_done();
}

}  // namespace ron
