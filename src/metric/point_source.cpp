#include "metric/point_source.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace ron {

namespace {

std::vector<BallIds::Run> runs_of(std::span<const NodeId> ids) {
  std::vector<BallIds::Run> runs;
  std::size_t i = 0;
  while (i < ids.size()) {
    std::size_t j = i + 1;
    while (j < ids.size() && ids[j] == ids[j - 1] + 1) ++j;
    runs.push_back({ids[i], static_cast<NodeId>(ids[j - 1] + 1)});
    i = j;
  }
  return runs;
}

/// k-th smallest (k >= 1) of {0} ∪ L ∪ R, where left(i), i < len_l, and
/// right(j), j < len_r, are nondecreasing virtual arrays of positive
/// distances (the two monotone branches away from u). O(log) probes.
template <typename LeftFn, typename RightFn>
Dist select_kth(std::size_t k, std::size_t len_l, std::size_t len_r,
                LeftFn&& left, RightFn&& right) {
  const std::size_t kk = k - 1;  // elements drawn from L ∪ R
  if (kk == 0) return 0.0;
  std::size_t lo = kk > len_r ? kk - len_r : 0;
  std::size_t hi = std::min(kk, len_l);
  // Smallest valid split (i from L, kk-i from R): monotone predicate
  // left(i) >= right(kk-i-1), with i == hi accepted implicitly.
  while (lo < hi) {
    const std::size_t i = lo + (hi - lo) / 2;
    if (left(i) >= right(kk - i - 1)) {
      hi = i;
    } else {
      lo = i + 1;
    }
  }
  const std::size_t i = lo;
  const std::size_t j = kk - i;
  Dist best = 0.0;  // distances are positive and i + j >= 1
  if (i > 0) best = std::max(best, left(i - 1));
  if (j > 0) best = std::max(best, right(j - 1));
  return best;
}

}  // namespace

BallIds BallIds::from_sorted_ids(std::vector<NodeId> ids) {
  BallIds b;
  b.size_ = ids.size();
  auto runs = runs_of(ids);
  if (runs.size() <= 2) {
    b.runs_ = std::move(runs);
  } else {
    b.ids_ = std::move(ids);
  }
  return b;
}

BallIds BallIds::from_runs(std::vector<Run> runs) {
  std::erase_if(runs, [](const Run& r) { return r.begin >= r.end; });
  std::sort(runs.begin(), runs.end(),
            [](const Run& a, const Run& b) { return a.begin < b.begin; });
  std::vector<Run> merged;
  for (const Run& r : runs) {
    if (!merged.empty() && r.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, r.end);
    } else {
      merged.push_back(r);
    }
  }
  BallIds b;
  for (const Run& r : merged) b.size_ += r.end - r.begin;
  if (merged.size() <= 2) {
    b.runs_ = std::move(merged);
  } else {
    // Not a line/ring shape after all: fall back to the sorted-id form the
    // canonicalization rule demands for > 2 maximal runs.
    b.ids_.reserve(b.size_);
    for (const Run& r : merged) {
      for (NodeId v = r.begin; v < r.end; ++v) b.ids_.push_back(v);
    }
  }
  return b;
}

NodeId BallIds::at(std::size_t rank) const {
  RON_CHECK(rank < size_, "BallIds::at: rank=" << rank << ", size=" << size_);
  if (!runs_backed()) return ids_[rank];
  for (const Run& r : runs_) {
    const std::size_t len = r.end - r.begin;
    if (rank < len) return static_cast<NodeId>(r.begin + rank);
    rank -= len;
  }
  RON_CHECK(false, "BallIds::at: runs shorter than size " << size_);
  return kInvalidNode;
}

bool BallIds::contains(NodeId v) const {
  if (runs_backed()) {
    for (const Run& r : runs_) {
      if (v >= r.begin && v < r.end) return true;
    }
    return false;
  }
  return std::binary_search(ids_.begin(), ids_.end(), v);
}

// ---------------------------------------------------------------------------
// LineSource

LineSource::LineSource(const MetricSpace& metric)
    : metric_(metric), n_(metric.n()) {
  RON_CHECK(n_ >= 2, "LineSource needs >= 2 nodes");
}

NodeId LineSource::reach_right(NodeId u, Dist r) const {
  NodeId lo = u;
  auto hi = static_cast<NodeId>(n_ - 1);
  while (lo < hi) {
    const NodeId mid = lo + (hi - lo + 1) / 2;
    if (metric_.distance(u, mid) <= r) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

NodeId LineSource::reach_left(NodeId u, Dist r) const {
  NodeId lo = 0;
  NodeId hi = u;
  while (lo < hi) {
    const NodeId mid = lo + (hi - lo) / 2;
    if (metric_.distance(u, mid) <= r) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

BallIds LineSource::ball_ids(NodeId u, Dist r) const {
  if (r < 0.0) return {};
  return BallIds::from_runs(
      {{reach_left(u, r), static_cast<NodeId>(reach_right(u, r) + 1)}});
}

std::size_t LineSource::ball_size(NodeId u, Dist r) const {
  if (r < 0.0) return 0;
  return static_cast<std::size_t>(reach_right(u, r)) - reach_left(u, r) + 1;
}

Dist LineSource::kth_radius(NodeId u, std::size_t k) const {
  RON_CHECK(k >= 1 && k <= n_, "kth_radius: k out of range");
  return select_kth(
      k, u, n_ - 1 - u,
      [&](std::size_t i) { return metric_.distance(u, u - 1 - i); },
      [&](std::size_t j) {
        return metric_.distance(u, static_cast<NodeId>(u + 1 + j));
      });
}

PointSource::Extremes LineSource::extremes() const {
  Extremes e{kInfDist, 0.0};
  for (NodeId u = 0; u < n_; ++u) {
    // Per-node nearest is an adjacent node and farthest is an endpoint
    // (monotone branches) — the same values the dense rows reduce.
    Dist nearest = kInfDist;
    if (u > 0) nearest = std::min(nearest, metric_.distance(u, u - 1));
    if (u + 1 < n_) nearest = std::min(nearest, metric_.distance(u, u + 1));
    const Dist farthest =
        std::max(metric_.distance(u, 0),
                 metric_.distance(u, static_cast<NodeId>(n_ - 1)));
    e.dmin = std::min(e.dmin, nearest);
    e.dmax = std::max(e.dmax, farthest);
  }
  return e;
}

// ---------------------------------------------------------------------------
// RingSource

RingSource::RingSource(const MetricSpace& metric)
    : metric_(metric),
      n_(metric.n()),
      len_left_((n_ - 1) / 2),
      len_right_(n_ - 1 - len_left_) {
  RON_CHECK(n_ >= 3, "RingSource needs >= 3 nodes");
}

NodeId RingSource::offset(NodeId u, std::size_t t, bool left) const {
  const std::size_t v = left ? (u + n_ - t) % n_ : (u + t) % n_;
  return static_cast<NodeId>(v);
}

std::size_t RingSource::reach(NodeId u, Dist r, std::size_t len,
                              bool left) const {
  std::size_t lo = 0;
  std::size_t hi = len;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    if (metric_.distance(u, offset(u, mid, left)) <= r) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

BallIds RingSource::ball_ids(NodeId u, Dist r) const {
  if (r < 0.0) return {};
  const std::size_t a = reach(u, r, len_left_, true);
  const std::size_t b = reach(u, r, len_right_, false);
  const std::size_t count = a + b + 1;
  if (count == n_) {
    return BallIds::from_runs({{0, static_cast<NodeId>(n_)}});
  }
  const std::size_t start = (u + n_ - a) % n_;
  if (start + count <= n_) {
    return BallIds::from_runs({{static_cast<NodeId>(start),
                                static_cast<NodeId>(start + count)}});
  }
  return BallIds::from_runs(
      {{static_cast<NodeId>(start), static_cast<NodeId>(n_)},
       {0, static_cast<NodeId>(start + count - n_)}});
}

std::size_t RingSource::ball_size(NodeId u, Dist r) const {
  if (r < 0.0) return 0;
  return reach(u, r, len_left_, true) + reach(u, r, len_right_, false) + 1;
}

Dist RingSource::kth_radius(NodeId u, std::size_t k) const {
  RON_CHECK(k >= 1 && k <= n_, "kth_radius: k out of range");
  return select_kth(
      k, len_left_, len_right_,
      [&](std::size_t i) { return metric_.distance(u, offset(u, i + 1, true)); },
      [&](std::size_t j) {
        return metric_.distance(u, offset(u, j + 1, false));
      });
}

PointSource::Extremes RingSource::extremes() const {
  Extremes e{kInfDist, 0.0};
  for (NodeId u = 0; u < n_; ++u) {
    const Dist nearest = std::min(metric_.distance(u, offset(u, 1, true)),
                                  metric_.distance(u, offset(u, 1, false)));
    const Dist farthest =
        std::max(metric_.distance(u, offset(u, len_left_, true)),
                 metric_.distance(u, offset(u, len_right_, false)));
    e.dmin = std::min(e.dmin, nearest);
    e.dmax = std::max(e.dmax, farthest);
  }
  return e;
}

// ---------------------------------------------------------------------------
// ScanSource

ScanSource::ScanSource(const MetricSpace& metric)
    : metric_(metric), n_(metric.n()) {
  RON_CHECK(n_ >= 2, "ScanSource needs >= 2 nodes");
}

BallIds ScanSource::ball_ids(NodeId u, Dist r) const {
  std::vector<NodeId> ids;
  for (NodeId v = 0; v < n_; ++v) {
    if (metric_.distance(u, v) <= r) ids.push_back(v);
  }
  return BallIds::from_sorted_ids(std::move(ids));
}

std::size_t ScanSource::ball_size(NodeId u, Dist r) const {
  std::size_t count = 0;
  for (NodeId v = 0; v < n_; ++v) {
    if (metric_.distance(u, v) <= r) ++count;
  }
  return count;
}

Dist ScanSource::kth_radius(NodeId u, std::size_t k) const {
  RON_CHECK(k >= 1 && k <= n_, "kth_radius: k out of range");
  std::vector<Dist> ds(n_);
  for (NodeId v = 0; v < n_; ++v) ds[v] = metric_.distance(u, v);
  std::nth_element(ds.begin(), ds.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   ds.end());
  return ds[k - 1];
}

PointSource::Extremes ScanSource::extremes() const {
  Extremes e{kInfDist, 0.0};
  for (NodeId u = 0; u < n_; ++u) {
    Dist nearest = kInfDist;
    Dist farthest = 0.0;
    for (NodeId v = 0; v < n_; ++v) {
      if (v == u) continue;
      const Dist d = metric_.distance(u, v);
      nearest = std::min(nearest, d);
      farthest = std::max(farthest, d);
    }
    e.dmin = std::min(e.dmin, nearest);
    e.dmax = std::max(e.dmax, farthest);
  }
  return e;
}

}  // namespace ron
