// Explicit n x n distance-matrix metric.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "metric/metric_space.h"

namespace ron {

class DenseMetric final : public MetricSpace {
 public:
  /// Largest n an explicit matrix may have. The matrix costs n^2 * 8 bytes
  /// (~3.2 GB at the cap); a typo'd n=1000000 must throw a named
  /// ron::Error, not OOM the container. Large metrics stay implicit
  /// (coordinate-backed families + SparseProximityIndex).
  static constexpr std::size_t kMaxDenseMetricNodes = 20000;

  /// From a row-major n*n matrix. Checks symmetry and the zero diagonal;
  /// the triangle inequality is the caller's responsibility (use
  /// validate_metric in tests).
  DenseMetric(std::size_t n, std::vector<Dist> matrix,
              std::string name = "dense");

  /// From a distance callback evaluated on all pairs.
  DenseMetric(std::size_t n,
              const std::function<Dist(NodeId, NodeId)>& dist_fn,
              std::string name = "dense");

  std::size_t n() const override { return n_; }
  Dist distance(NodeId u, NodeId v) const override {
    return matrix_[static_cast<std::size_t>(u) * n_ + v];
  }
  std::string name() const override { return name_; }

 private:
  void check_axioms() const;

  std::size_t n_;
  std::vector<Dist> matrix_;
  std::string name_;
};

}  // namespace ron
