// Hierarchically clustered point clouds — the synthetic stand-in for Internet
// latency matrices (see DESIGN.md "Substitutions").
//
// Real latency data (the motivation of [33, 50]) is proprietary; a two-level
// transit-stub-style cloud reproduces its relevant structure for our purposes:
// low doubling dimension, strong local clustering, and a wide spread of
// distance scales.
#pragma once

#include <cstdint>

#include "metric/euclidean.h"

namespace ron {

struct ClusteredParams {
  std::size_t clusters = 16;       // top-level "autonomous systems"
  std::size_t per_cluster = 32;    // nodes per cluster
  std::size_t dim = 3;             // embedding dimension
  double world_side = 10000.0;     // span of cluster centers
  double cluster_side = 100.0;     // span of points around their center
  double subcluster_side = 5.0;    // second-level jitter ("LANs")
  std::size_t subclusters = 4;     // second-level groups per cluster
};

/// Generates clusters*per_cluster points. Deterministic in `seed`.
EuclideanMetric clustered_metric(const ClusteredParams& params,
                                 std::uint64_t seed);

}  // namespace ron
