#include "metric/dense_metric.h"

#include <cmath>

#include "common/check.h"

namespace ron {

namespace {
// Shared by both constructors: the guardrail must fire before the n*n
// allocation is attempted, i.e. before the member-init list runs.
std::vector<Dist> checked_matrix_alloc(std::size_t n) {
  RON_CHECK(n <= DenseMetric::kMaxDenseMetricNodes,
            "DenseMetric: n=" << n << " exceeds the dense-matrix cap of "
            << DenseMetric::kMaxDenseMetricNodes << " nodes; keep large "
            "metrics implicit (coordinate-backed families)");
  return std::vector<Dist>(n * n);
}
}  // namespace

DenseMetric::DenseMetric(std::size_t n, std::vector<Dist> matrix,
                         std::string name)
    : n_(n), matrix_(std::move(matrix)), name_(std::move(name)) {
  RON_CHECK(n_ >= 1, "n=" << n_);
  RON_CHECK(n_ <= kMaxDenseMetricNodes,
            "DenseMetric: n=" << n_ << " exceeds the dense-matrix cap of "
            << kMaxDenseMetricNodes << " nodes; keep large metrics implicit "
            "(coordinate-backed families)");
  RON_CHECK(matrix_.size() == n_ * n_, "matrix size must be n*n");
  check_axioms();
}

DenseMetric::DenseMetric(std::size_t n,
                         const std::function<Dist(NodeId, NodeId)>& dist_fn,
                         std::string name)
    : n_(n), matrix_(checked_matrix_alloc(n)), name_(std::move(name)) {
  RON_CHECK(n_ >= 1, "n=" << n_);
  for (NodeId u = 0; u < n_; ++u) {
    for (NodeId v = 0; v < n_; ++v) {
      matrix_[static_cast<std::size_t>(u) * n_ + v] = dist_fn(u, v);
    }
  }
  check_axioms();
}

void DenseMetric::check_axioms() const {
  for (NodeId u = 0; u < n_; ++u) {
    RON_CHECK(distance(u, u) == 0.0, "nonzero diagonal at " << u);
    for (NodeId v = u + 1; v < n_; ++v) {
      const Dist duv = distance(u, v);
      RON_CHECK(std::isfinite(duv) && duv > 0.0,
                "invalid distance at (" << u << "," << v << ")");
      RON_CHECK(duv == distance(v, u),
                "asymmetric distance at (" << u << "," << v << ")");
    }
  }
}

}  // namespace ron
