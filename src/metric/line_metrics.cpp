#include "metric/line_metrics.h"

#include <cmath>
#include <memory>

#include "common/check.h"
#include "metric/point_source.h"

namespace ron {

GeometricLineMetric::GeometricLineMetric(std::size_t n, double base)
    : n_(n), base_(base) {
  RON_CHECK(n_ >= 2, "geometric line needs >= 2 points");
  RON_CHECK(base_ > 1.0 && base_ <= 2.0, "base must be in (1, 2]");
  const double top = static_cast<double>(n_ - 1) * std::log2(base_);
  RON_CHECK(top < 1020.0,
            "base^(n-1) would overflow double; reduce n or base");
  coords_.resize(n_);
  double x = 1.0;
  for (std::size_t i = 0; i < n_; ++i) {
    coords_[i] = x;
    x *= base_;
  }
  name_ = "geometric-line(b=" + std::to_string(base_) + ")";
}

Dist GeometricLineMetric::distance(NodeId u, NodeId v) const {
  return std::abs(coords_[u] - coords_[v]);
}

std::unique_ptr<PointSource> GeometricLineMetric::make_point_source() const {
  return std::make_unique<LineSource>(*this);
}

UniformLineMetric::UniformLineMetric(std::size_t n, double spacing)
    : n_(n), spacing_(spacing) {
  RON_CHECK(n_ >= 1 && spacing_ > 0.0, "n=" << n_ << ", spacing=" << spacing_);
}

Dist UniformLineMetric::distance(NodeId u, NodeId v) const {
  const double du = static_cast<double>(u);
  const double dv = static_cast<double>(v);
  return std::abs(du - dv) * spacing_;
}

std::unique_ptr<PointSource> UniformLineMetric::make_point_source() const {
  return std::make_unique<LineSource>(*this);
}

RingMetric::RingMetric(std::size_t n, double spacing)
    : n_(n), spacing_(spacing) {
  RON_CHECK(n_ >= 3 && spacing_ > 0.0, "n=" << n_ << ", spacing=" << spacing_);
}

Dist RingMetric::distance(NodeId u, NodeId v) const {
  const std::size_t a = u < v ? v - u : u - v;
  const std::size_t b = n_ - a;
  return static_cast<double>(a < b ? a : b) * spacing_;
}

std::unique_ptr<PointSource> RingMetric::make_point_source() const {
  return std::make_unique<RingSource>(*this);
}

}  // namespace ron
