// Euclidean (l_p) point-set metrics and generators.
//
// Constant-dimensional l_p point sets are the motivating special case of
// doubling metrics (paper §1): doubling dimension is k + O(1) for
// k-dimensional point sets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metric/metric_space.h"

namespace ron {

class EuclideanMetric final : public MetricSpace {
 public:
  /// `points` is row-major: n rows of `dim` coordinates. `p` is the norm
  /// exponent (2.0 = Euclidean; std::numeric_limits<double>::infinity() for
  /// l_inf).
  EuclideanMetric(std::vector<double> points, std::size_t dim, double p = 2.0,
                  std::string name = "euclidean");

  std::size_t n() const override { return n_; }
  Dist distance(NodeId u, NodeId v) const override;
  std::string name() const override { return name_; }

  /// No exploitable id order: sparse proximity via the ScanSource fallback
  /// (O(n) probes per query, O(1) extra memory).
  std::unique_ptr<PointSource> make_point_source() const override;

  std::size_t dim() const { return dim_; }
  const double* point(NodeId u) const { return &points_[u * dim_]; }

 private:
  std::vector<double> points_;
  std::size_t n_;
  std::size_t dim_;
  double p_;
  std::string name_;
};

/// n points uniform in the cube [0, side]^dim.
EuclideanMetric random_cube_metric(std::size_t n, std::size_t dim,
                                   std::uint64_t seed, double side = 1000.0);

/// width x height integer grid in the plane (unit spacing), a UL-constrained
/// doubling metric with alpha ~= 2.
EuclideanMetric grid_metric(std::size_t width, std::size_t height);

}  // namespace ron
