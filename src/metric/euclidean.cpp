#include "metric/euclidean.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/rng.h"
#include "metric/point_source.h"

namespace ron {

EuclideanMetric::EuclideanMetric(std::vector<double> points, std::size_t dim,
                                 double p, std::string name)
    : points_(std::move(points)),
      dim_(dim),
      p_(p),
      name_(std::move(name)) {
  RON_CHECK(dim_ >= 1, "dim=" << dim_);
  RON_CHECK(!points_.empty() && points_.size() % dim_ == 0,
            "points size must be a multiple of dim");
  RON_CHECK(p_ >= 1.0, "l_p norm needs p >= 1");
  n_ = points_.size() / dim_;
}

Dist EuclideanMetric::distance(NodeId u, NodeId v) const {
  const double* a = point(u);
  const double* b = point(v);
  if (std::isinf(p_)) {
    double m = 0.0;
    for (std::size_t k = 0; k < dim_; ++k) {
      m = std::max(m, std::abs(a[k] - b[k]));
    }
    return m;
  }
  if (p_ == 2.0) {
    double s = 0.0;
    for (std::size_t k = 0; k < dim_; ++k) {
      const double d = a[k] - b[k];
      s += d * d;
    }
    return std::sqrt(s);
  }
  double s = 0.0;
  for (std::size_t k = 0; k < dim_; ++k) {
    s += std::pow(std::abs(a[k] - b[k]), p_);
  }
  return std::pow(s, 1.0 / p_);
}

std::unique_ptr<PointSource> EuclideanMetric::make_point_source() const {
  return std::make_unique<ScanSource>(*this);
}

EuclideanMetric random_cube_metric(std::size_t n, std::size_t dim,
                                   std::uint64_t seed, double side) {
  RON_CHECK(n >= 1 && dim >= 1 && side > 0.0,
            "n=" << n << ", dim=" << dim << ", side=" << side);
  Rng rng(seed);
  std::vector<double> pts(n * dim);
  for (double& x : pts) x = rng.uniform(0.0, side);
  return EuclideanMetric(std::move(pts), dim, 2.0, "random-cube");
}

EuclideanMetric grid_metric(std::size_t width, std::size_t height) {
  RON_CHECK(width >= 1 && height >= 1, "grid " << width << "x" << height);
  std::vector<double> pts;
  pts.reserve(width * height * 2);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      pts.push_back(static_cast<double>(x));
      pts.push_back(static_cast<double>(y));
    }
  }
  return EuclideanMetric(std::move(pts), 2, 2.0, "grid");
}

}  // namespace ron
