#include "metric/clustered.h"

#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace ron {

EuclideanMetric clustered_metric(const ClusteredParams& p,
                                 std::uint64_t seed) {
  RON_CHECK(p.clusters >= 1 && p.per_cluster >= 1 && p.dim >= 1,
            "clusters=" << p.clusters << ", per_cluster=" << p.per_cluster
                        << ", dim=" << p.dim);
  RON_CHECK(p.subclusters >= 1, "subclusters=" << p.subclusters);
  RON_CHECK(p.world_side > p.cluster_side && p.cluster_side > p.subcluster_side,
            "scales must be separated: world > cluster > subcluster");
  Rng rng(seed);
  std::vector<double> pts;
  pts.reserve(p.clusters * p.per_cluster * p.dim);
  std::vector<double> center(p.dim), sub(p.dim);
  for (std::size_t c = 0; c < p.clusters; ++c) {
    for (std::size_t k = 0; k < p.dim; ++k) {
      center[k] = rng.uniform(0.0, p.world_side);
    }
    // Second-level group anchors inside this cluster.
    std::vector<double> anchors(p.subclusters * p.dim);
    for (double& a : anchors) a = rng.uniform(0.0, p.cluster_side);
    for (std::size_t i = 0; i < p.per_cluster; ++i) {
      const std::size_t g = rng.index(p.subclusters);
      for (std::size_t k = 0; k < p.dim; ++k) {
        pts.push_back(center[k] + anchors[g * p.dim + k] +
                      rng.uniform(0.0, p.subcluster_side));
      }
    }
  }
  return EuclideanMetric(std::move(pts), p.dim, 2.0, "clustered");
}

}  // namespace ron
