// PointSource: the metric-family hook that makes sparse proximity possible.
//
// The dense ProximityIndex answers every ball/rank query from n^2
// precomputed rows. The synthetic families all have structure (sorted 1-D
// coordinates, a cycle, low-dimensional point clouds) that answers the same
// queries in O(log n) or O(n) per query with O(1) extra memory — a
// PointSource is that structure behind one interface, so SparseProximityIndex
// is one backend, not nine special cases. A family opts in by overriding
// MetricSpace::make_point_source(); families without one (graph metrics,
// explicit matrices) stay on the dense backend.
//
// Bit-identity contract: a PointSource never computes a distance itself — it
// only decides WHICH (u, v) pairs to probe and answers with
// metric.distance(u, v) values, so the sparse backend agrees bitwise with
// the dense rows built from the same metric. Member sets are returned as
// BallIds, whose representation is a pure function of the set (see below),
// so consumers shared by both backends take identical branches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.h"
#include "metric/metric_space.h"

namespace ron {

/// A ball's member set in canonical compressed form.
///
/// Representation is a pure function of the member set: decompose the sorted
/// ids into maximal runs of consecutive ids; if there are at most two runs
/// (always true for line/ring geometry) the set is stored as those runs,
/// otherwise as the sorted id vector. Both proximity backends therefore
/// build the exact same object for the same ball, and code that branches on
/// runs_backed() — the measure prefix-sum fast path — branches the same way
/// under either backend.
class BallIds {
 public:
  struct Run {
    NodeId begin;  // inclusive
    NodeId end;    // exclusive
  };

  BallIds() = default;

  /// From strictly increasing ids. Canonicalizes to runs when possible.
  static BallIds from_sorted_ids(std::vector<NodeId> ids);

  /// From id runs in any order (at most two after merging adjacent /
  /// overlapping ones — the line/ring case). Canonicalizes.
  static BallIds from_runs(std::vector<Run> runs);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool runs_backed() const { return ids_.empty(); }

  /// Valid iff runs_backed(); runs are disjoint, non-adjacent, ascending.
  std::span<const Run> runs() const { return runs_; }
  /// Valid iff !runs_backed(); strictly increasing.
  std::span<const NodeId> ids() const { return ids_; }

  /// rank-th member in ascending id order (rank < size()).
  NodeId at(std::size_t rank) const;

  bool contains(NodeId v) const;

  /// Visits members in ascending id order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (runs_backed()) {
      for (const Run& r : runs_) {
        for (NodeId v = r.begin; v < r.end; ++v) fn(v);
      }
    } else {
      for (NodeId v : ids_) fn(v);
    }
  }

 private:
  std::vector<Run> runs_;    // canonical when the set has <= 2 maximal runs
  std::vector<NodeId> ids_;  // otherwise: sorted ids
  std::size_t size_ = 0;
};

/// Family-aware spatial structure answering the queries SparseProximityIndex
/// needs. All distance values returned (or compared) come from
/// metric.distance() probes — see the bit-identity contract above.
class PointSource {
 public:
  virtual ~PointSource() = default;

  virtual std::size_t n() const = 0;

  /// Members of the closed ball B_u(r) (always including u for r >= 0;
  /// empty for r < 0), canonical.
  virtual BallIds ball_ids(NodeId u, Dist r) const = 0;

  /// |B_u(r)| without materializing the set.
  virtual std::size_t ball_size(NodeId u, Dist r) const = 0;

  /// Distance from u to its k-th nearest node counting u itself
  /// (k = 1 gives 0). Requires 1 <= k <= n.
  virtual Dist kth_radius(NodeId u, std::size_t k) const = 0;

  struct Extremes {
    Dist dmin;  // smallest positive pairwise distance
    Dist dmax;  // diameter
  };
  /// Reduced exactly as the dense build reduces them (per-node nearest /
  /// farthest, then min/max over nodes), so the values match bitwise.
  virtual Extremes extremes() const = 0;
};

/// 1-D metrics whose node ids are sorted along the line (geoline, uniline):
/// distance from u is monotone nondecreasing walking away from u in either
/// id direction. Balls are a single id run found by binary search; k-th
/// radii select across the two monotone branches in O(log n) probes.
class LineSource final : public PointSource {
 public:
  explicit LineSource(const MetricSpace& metric);

  std::size_t n() const override { return n_; }
  BallIds ball_ids(NodeId u, Dist r) const override;
  std::size_t ball_size(NodeId u, Dist r) const override;
  Dist kth_radius(NodeId u, std::size_t k) const override;
  Extremes extremes() const override;

 private:
  // Largest v in [u, n-1] with d(u, v) <= r, and smallest v in [0, u].
  NodeId reach_right(NodeId u, Dist r) const;
  NodeId reach_left(NodeId u, Dist r) const;

  const MetricSpace& metric_;
  std::size_t n_;
};

/// Cycle metrics (the `ring` family): from u the two arc directions are
/// monotone, covering offsets 1..(n-1)/2 (left) and 1..n-1-(n-1)/2 (right).
/// Balls are one arc — at most two id runs.
class RingSource final : public PointSource {
 public:
  explicit RingSource(const MetricSpace& metric);

  std::size_t n() const override { return n_; }
  BallIds ball_ids(NodeId u, Dist r) const override;
  std::size_t ball_size(NodeId u, Dist r) const override;
  Dist kth_radius(NodeId u, std::size_t k) const override;
  Extremes extremes() const override;

 private:
  NodeId offset(NodeId u, std::size_t t, bool left) const;
  // Largest arc reach a <= len with d(u, u -+ a) <= r.
  std::size_t reach(NodeId u, Dist r, std::size_t len, bool left) const;

  const MetricSpace& metric_;
  std::size_t n_;
  std::size_t len_left_;   // (n-1)/2
  std::size_t len_right_;  // n-1-len_left_
};

/// Fallback for point families with no exploitable id order (euclid,
/// clustered, torus): every query is an O(n) probe scan in O(1) extra
/// memory — linear per query instead of a quadratic precomputation, which
/// is the trade the sparse backend wants at large n. extremes() is the one
/// O(n^2) call; it runs once per index build.
class ScanSource final : public PointSource {
 public:
  explicit ScanSource(const MetricSpace& metric);

  std::size_t n() const override { return n_; }
  BallIds ball_ids(NodeId u, Dist r) const override;
  std::size_t ball_size(NodeId u, Dist r) const override;
  Dist kth_radius(NodeId u, std::size_t k) const override;
  Extremes extremes() const override;

 private:
  const MetricSpace& metric_;
  std::size_t n_;
};

}  // namespace ron
