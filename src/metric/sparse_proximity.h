// SparseProximityIndex: the O(n) proximity backend for large metrics.
//
// Keeps per-node truncated rows (the kTruncatedRowLen nearest neighbors,
// built once) and answers everything else on demand through the metric
// family's PointSource — so a million-node geoline overlay builds without
// any n x n object in RAM. Answers are bit-identical to the dense backend:
// every distance value is a metric.distance() probe and member sets use the
// canonical BallIds form (see the contract in point_source.h).
//
// Backend selection lives here too: make_proximity_index() picks dense
// below kAutoSparseCutoff (or when the family has no PointSource) and
// sparse above it.
#pragma once

#include <memory>
#include <vector>

#include "metric/proximity.h"

namespace ron {

class SparseProximityIndex final : public ProximityIndex {
 public:
  /// Truncated-row length: the k nearest neighbors cached per node at
  /// build time, serving kth_radius(u, k <= kTruncatedRowLen) in O(1).
  static constexpr std::size_t kTruncatedRowLen = 16;

  /// Requires metric.make_point_source() != nullptr (throws ron::Error
  /// otherwise). The ScanSource fallback makes extremes() an O(n^2) probe
  /// scan at construction — fine for differential tests, noticeable at
  /// n >= 10^5; line/ring sources build in O(n log n).
  explicit SparseProximityIndex(const MetricSpace& metric);

  bool has_full_rows() const override { return false; }
  std::size_t ball_size(NodeId u, Dist r) const override;
  BallIds ball_ids(NodeId u, Dist r) const override;
  Dist kth_radius(NodeId u, std::size_t k) const override;

  /// Heap bytes held by the index (truncated rows) — the bench artifact's
  /// memory-model evidence that the backend is O(n), not O(n^2).
  std::size_t memory_bytes() const {
    return rows_.capacity() * sizeof(Neighbor);
  }

 private:
  std::unique_ptr<PointSource> source_;
  std::size_t k0_;              // min(kTruncatedRowLen, n)
  std::vector<Neighbor> rows_;  // n_ consecutive (d, v)-sorted rows of k0_
};

/// Which proximity backend a build should use.
enum class ProxBackend {
  kAuto,    // sparse iff the family has a PointSource and n > cutoff
  kDense,   // force DenseProximityIndex (throws above its node cap)
  kSparse,  // force SparseProximityIndex (throws without a PointSource)
};

/// kAuto crossover: below this the dense rows are a few hundred MB at most
/// and strictly faster per query; above it the O(n^2) build cost dominates
/// and any family with a PointSource goes sparse. Every pre-existing test
/// scenario (n <= 2048) stays dense under kAuto.
inline constexpr std::size_t kAutoSparseCutoff = 4096;

/// Builds the backend chosen by `backend` (see ProxBackend). `num_threads`
/// parallelizes the dense row build; the sparse build is single-pass.
std::unique_ptr<ProximityIndex> make_proximity_index(
    const MetricSpace& metric, ProxBackend backend = ProxBackend::kAuto,
    unsigned num_threads = 0);

/// Parses "auto" / "dense" / "sparse" (the CLI --backend values); throws
/// ron::Error on anything else.
ProxBackend parse_prox_backend(const std::string& text);

}  // namespace ron
