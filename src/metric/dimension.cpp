#include "metric/dimension.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace ron {

namespace {

/// Greedy cover of the nodes of `ball` with balls of radius r/2 (Lemma 1.1
/// with k = 1): pick any remaining node, claim everything within r/2 of it.
std::size_t greedy_half_cover_size(const ProximityIndex& prox,
                                   std::span<const ProximityIndex::Neighbor> ball,
                                   Dist half_r) {
  std::vector<NodeId> remaining;
  remaining.reserve(ball.size());
  for (const auto& nb : ball) remaining.push_back(nb.v);
  std::size_t covers = 0;
  while (!remaining.empty()) {
    const NodeId c = remaining.front();
    ++covers;
    std::vector<NodeId> next;
    next.reserve(remaining.size());
    for (NodeId v : remaining) {
      if (prox.dist(c, v) > half_r) next.push_back(v);
    }
    remaining.swap(next);
  }
  return covers;
}

}  // namespace

DimensionEstimate estimate_doubling_dimension(const ProximityIndex& prox,
                                              std::size_t center_samples,
                                              std::uint64_t seed) {
  RON_CHECK(center_samples >= 1, "center_samples=" << center_samples);
  Rng rng(seed);
  DimensionEstimate est;
  double sum = 0.0;
  const std::size_t n = prox.n();
  const std::size_t picks = std::min(center_samples, n);
  auto centers = rng.sample_without_replacement(picks, n);
  for (std::size_t ci : centers) {
    const NodeId u = static_cast<NodeId>(ci);
    // Dyadic radii from dmin to the diameter.
    for (Dist r = prox.dmin() * 2.0; r <= prox.dmax() * 2.0; r *= 2.0) {
      auto b = prox.ball(u, r);
      if (b.size() < 2) continue;
      const std::size_t covers = greedy_half_cover_size(prox, b, r / 2.0);
      const double alpha = std::log2(static_cast<double>(covers));
      est.dimension = std::max(est.dimension, alpha);
      sum += alpha;
      ++est.samples;
    }
  }
  est.mean = est.samples > 0 ? sum / static_cast<double>(est.samples) : 0.0;
  return est;
}

DimensionEstimate estimate_grid_dimension(const ProximityIndex& prox,
                                          std::size_t center_samples,
                                          std::uint64_t seed) {
  RON_CHECK(center_samples >= 1, "center_samples=" << center_samples);
  Rng rng(seed);
  DimensionEstimate est;
  double sum = 0.0;
  const std::size_t n = prox.n();
  const std::size_t picks = std::min(center_samples, n);
  auto centers = rng.sample_without_replacement(picks, n);
  for (std::size_t ci : centers) {
    const NodeId u = static_cast<NodeId>(ci);
    for (Dist r = prox.dmin() * 2.0; r <= prox.dmax() * 2.0; r *= 2.0) {
      const std::size_t big = prox.ball_size(u, r);
      const std::size_t small = prox.ball_size(u, r / 2.0);
      if (small == 0 || big < 2) continue;
      const double alpha =
          std::log2(static_cast<double>(big) / static_cast<double>(small));
      est.dimension = std::max(est.dimension, alpha);
      sum += alpha;
      ++est.samples;
    }
  }
  est.mean = est.samples > 0 ? sum / static_cast<double>(est.samples) : 0.0;
  return est;
}

}  // namespace ron
