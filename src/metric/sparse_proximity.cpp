#include "metric/sparse_proximity.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"

namespace ron {

SparseProximityIndex::SparseProximityIndex(const MetricSpace& metric)
    : ProximityIndex(metric), source_(metric.make_point_source()) {
  RON_CHECK(source_ != nullptr,
            "SparseProximityIndex: metric '" << metric.name()
            << "' has no PointSource (make_point_source returned null); "
            "only point-based families support the sparse backend");
  RON_CHECK(source_->n() == n_, "PointSource n=" << source_->n()
                                << " != metric n=" << n_);
  const auto [dmin, dmax] = source_->extremes();
  dmin_ = dmin;
  dmax_ = dmax;
  RON_CHECK(dmin_ > 0.0, "duplicate point detected (dmin=" << dmin_ << ")");
  init_scales();

  // Truncated rows: for each node the k0 nearest as (d, v) sorted by
  // (d, v) — exactly the dense row prefix (row_prefix() semantics, inlined
  // so the build is one ball enumeration per node).
  k0_ = std::min(kTruncatedRowLen, n_);
  rows_.reserve(n_ * k0_);
  std::vector<Neighbor> scratch;
  for (NodeId u = 0; u < n_; ++u) {
    const Dist r = source_->kth_radius(u, k0_);
    scratch.clear();
    source_->ball_ids(u, r).for_each(
        [&](NodeId v) { scratch.push_back({metric_.distance(u, v), v}); });
    std::sort(scratch.begin(), scratch.end(),
              [](const Neighbor& a, const Neighbor& b) {
                if (a.d != b.d) return a.d < b.d;
                return a.v < b.v;
              });
    RON_CHECK(scratch.size() >= k0_,
              "PointSource ball at kth_radius(u=" << u << ", k=" << k0_
              << ") returned only " << scratch.size() << " members");
    rows_.insert(rows_.end(), scratch.begin(), scratch.begin() +
                                  static_cast<std::ptrdiff_t>(k0_));
  }
}

std::size_t SparseProximityIndex::ball_size(NodeId u, Dist r) const {
  RON_CHECK(u < n_, "node u=" << u << ", n=" << n_);
  return source_->ball_size(u, r);
}

BallIds SparseProximityIndex::ball_ids(NodeId u, Dist r) const {
  RON_CHECK(u < n_, "node u=" << u << ", n=" << n_);
  return source_->ball_ids(u, r);
}

Dist SparseProximityIndex::kth_radius(NodeId u, std::size_t k) const {
  RON_CHECK(u < n_, "node u=" << u << ", n=" << n_);
  RON_CHECK(k >= 1 && k <= n_, "kth_radius: k out of range");
  if (k <= k0_) return rows_[static_cast<std::size_t>(u) * k0_ + k - 1].d;
  return source_->kth_radius(u, k);
}

std::unique_ptr<ProximityIndex> make_proximity_index(const MetricSpace& metric,
                                                     ProxBackend backend,
                                                     unsigned num_threads) {
  if (backend == ProxBackend::kAuto) {
    backend = (metric.n() > kAutoSparseCutoff && metric.make_point_source())
                  ? ProxBackend::kSparse
                  : ProxBackend::kDense;
  }
  if (backend == ProxBackend::kSparse) {
    return std::make_unique<SparseProximityIndex>(metric);
  }
  return std::make_unique<DenseProximityIndex>(metric, num_threads);
}

ProxBackend parse_prox_backend(const std::string& text) {
  if (text == "auto") return ProxBackend::kAuto;
  if (text == "dense") return ProxBackend::kDense;
  if (text == "sparse") return ProxBackend::kSparse;
  RON_CHECK(false, "unknown proximity backend '" << text
                   << "' (want auto|dense|sparse)");
  return ProxBackend::kAuto;
}

}  // namespace ron
