// Abstract finite metric space.
//
// All constructions in the paper take a finite metric (V, d) — either given
// explicitly or induced by the shortest paths of a weighted graph. Nodes are
// indices 0..n-1; distance() must be symmetric, zero exactly on the diagonal,
// and satisfy the triangle inequality.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "common/types.h"

namespace ron {

class PointSource;

class MetricSpace {
 public:
  virtual ~MetricSpace() = default;

  virtual std::size_t n() const = 0;

  /// d(u, v). Must be finite, symmetric, with d(u,v) = 0 iff u == v.
  virtual Dist distance(NodeId u, NodeId v) const = 0;

  virtual std::string name() const = 0;

  /// The family's spatial structure for sparse proximity (point_source.h),
  /// or nullptr if the family has none (graph metrics, explicit matrices) —
  /// those stay on the dense backend. The source holds a reference to this
  /// metric and must not outlive it. Defined out of line (metric_space.cpp)
  /// so this header needs only the forward declaration.
  virtual std::unique_ptr<PointSource> make_point_source() const;
};

/// Exhaustively validates metric axioms (O(n^3) for the triangle inequality;
/// intended for tests and small inputs). Throws ron::Error on violation.
/// `tolerance` absorbs floating-point slack in the triangle check.
void validate_metric(const MetricSpace& m, bool check_triangle = true,
                     double tolerance = 1e-9);

}  // namespace ron
