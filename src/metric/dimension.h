// Empirical dimensionality estimators.
//
// Doubling dimension (paper §1): infimum of alpha such that every set of
// diameter d is covered by 2^alpha sets of diameter d/2. We estimate it by
// greedily covering sampled balls B_u(r) with balls of radius r/2 (the
// Lemma 1.1 construction) and reporting log2 of the worst cover size.
//
// Grid dimension (footnote 2): smallest alpha with |B_u(r)| <=
// 2^alpha * |B_u(r/2)| for all balls. The geometric line separates the two:
// its doubling dimension is O(1) but its grid dimension is Θ(log n).
#pragma once

#include <cstdint>

#include "metric/proximity.h"

namespace ron {

struct DimensionEstimate {
  double dimension = 0.0;   // sup over sampled balls
  double mean = 0.0;        // mean over sampled balls
  std::size_t samples = 0;
};

/// Doubling dimension via greedy half-radius covers of sampled balls.
/// Samples `center_samples` centers x all dyadic radii.
DimensionEstimate estimate_doubling_dimension(const ProximityIndex& prox,
                                              std::size_t center_samples,
                                              std::uint64_t seed);

/// Grid (ball-growth) dimension via |B(u,r)| / |B(u,r/2)| ratios.
DimensionEstimate estimate_grid_dimension(const ProximityIndex& prox,
                                          std::size_t center_samples,
                                          std::uint64_t seed);

}  // namespace ron
