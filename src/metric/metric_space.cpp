#include "metric/metric_space.h"

#include <cmath>

#include "common/check.h"
#include "metric/point_source.h"

namespace ron {

std::unique_ptr<PointSource> MetricSpace::make_point_source() const {
  return nullptr;
}

void validate_metric(const MetricSpace& m, bool check_triangle,
                     double tolerance) {
  const std::size_t n = m.n();
  RON_CHECK(n >= 1, "metric must be non-empty");
  for (NodeId u = 0; u < n; ++u) {
    RON_CHECK(m.distance(u, u) == 0.0, "d(u,u) != 0 at u=" << u);
    for (NodeId v = u + 1; v < n; ++v) {
      const Dist duv = m.distance(u, v);
      const Dist dvu = m.distance(v, u);
      RON_CHECK(std::isfinite(duv) && duv > 0.0,
                "d(" << u << "," << v << ") = " << duv << " invalid");
      RON_CHECK(duv == dvu, "asymmetric distance at (" << u << "," << v << ")");
    }
  }
  if (!check_triangle) return;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (v == u) continue;
      const Dist duv = m.distance(u, v);
      for (NodeId w = 0; w < n; ++w) {
        if (w == u || w == v) continue;
        const Dist viaw = m.distance(u, w) + m.distance(w, v);
        RON_CHECK(duv <= viaw + tolerance,
                  "triangle inequality violated: d(" << u << "," << v << ")="
                      << duv << " > " << viaw << " via " << w);
      }
    }
  }
}

}  // namespace ron
