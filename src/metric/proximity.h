// ProximityIndex: ball/rank queries over a finite metric, behind two
// backends.
//
// Every construction in the paper repeatedly asks three questions about a
// metric: "which nodes lie in the closed ball B_u(r)?", "what is r_u(eps),
// the radius of the smallest ball around u with at least eps*n nodes?"
// (written r_{u,i} = r_u(2^-i) throughout §3 and §5), and "what are Δ and
// d_min?". ProximityIndex is the query interface; how the answers are
// produced is a backend choice:
//
//   DenseProximityIndex   precomputed per-node distance-sorted rows.
//                         O(n^2 log n) build, O(n^2) memory — the paper's
//                         laptop-scale regime (n up to a few thousand) and
//                         the differential-test oracle for the sparse
//                         backend. Guarded: construction above
//                         kMaxDenseNodes throws ron::Error instead of
//                         attempting a multi-GB allocation.
//
//   SparseProximityIndex  (sparse_proximity.h) truncated k-nearest rows
//                         plus on-demand queries through the metric
//                         family's PointSource. O(n polylog n) build,
//                         O(n) memory — the million-node regime.
//
// Both backends answer every portable query (ball_ids / ball_size /
// kth_radius / level_radius / rank_radius / dmin / dmax) bit-identically:
// all distance values come from metric.distance() probes and ball member
// sets use the canonical BallIds representation (point_source.h). Full
// (d, v)-sorted rows exist only on the dense backend — consumers that need
// them check has_full_rows() and get a named error otherwise.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "metric/metric_space.h"
#include "metric/point_source.h"

namespace ron {

class ProximityIndex {
 public:
  struct Neighbor {
    Dist d;
    NodeId v;
  };

  virtual ~ProximityIndex() = default;
  ProximityIndex(const ProximityIndex&) = delete;
  ProximityIndex& operator=(const ProximityIndex&) = delete;

  const MetricSpace& metric() const { return metric_; }
  std::size_t n() const { return n_; }

  Dist dist(NodeId u, NodeId v) const { return metric_.distance(u, v); }

  /// True iff row()/ball() spans are available (dense backend).
  virtual bool has_full_rows() const = 0;

  /// Row of (distance, node) pairs sorted by distance; row[0] is (0, u).
  /// Dense backend only: throws ron::Error when !has_full_rows().
  virtual std::span<const Neighbor> row(NodeId u) const;

  /// Nodes in the closed ball B_u(r), as a prefix of row(u).
  /// Dense backend only: throws ron::Error when !has_full_rows().
  virtual std::span<const Neighbor> ball(NodeId u, Dist r) const;

  /// |B_u(r)| — portable (both backends, bit-identical).
  virtual std::size_t ball_size(NodeId u, Dist r) const = 0;

  /// Member ids of B_u(r) in canonical BallIds form — portable.
  virtual BallIds ball_ids(NodeId u, Dist r) const = 0;

  /// Distance from u to its k-th nearest node counting u itself
  /// (k = 1 gives 0). Requires 1 <= k <= n. Portable.
  virtual Dist kth_radius(NodeId u, std::size_t k) const = 0;

  /// The k nearest nodes as (d, v) pairs sorted by (d, v), k <= n.
  /// Portable (computed from kth_radius + ball_ids + probes); the dense
  /// backend's row(u) prefix agrees bit-identically.
  std::vector<Neighbor> row_prefix(NodeId u, std::size_t k) const;

  /// r_u(eps): radius of the smallest closed ball around u containing at
  /// least eps*n nodes (eps in (0, 1]); implemented as kth_radius with
  /// k = ceil(eps * n). For the dyadic levels eps = 2^-i prefer
  /// level_radius, which computes k in exact integer arithmetic.
  Dist rank_radius(NodeId u, double eps) const;

  /// r_{u,i} = r_u(2^-i) for i >= 0, with k = ceil(n / 2^i) computed in
  /// exact integer arithmetic (clamped to >= 1, so large i is fine).
  Dist level_radius(NodeId u, int i) const;

  /// r_{u,i-1} with the paper's boundary convention r_{u,-1} = +infinity.
  Dist level_radius_prev(NodeId u, int i) const {
    return i == 0 ? kInfDist : level_radius(u, i - 1);
  }

  /// Nearest node to u among `candidates` (ties to the lower id);
  /// kInvalidNode if the set is empty. `candidates` need not be sorted.
  NodeId nearest_in(NodeId u, std::span<const NodeId> candidates) const;

  /// Smallest positive pairwise distance.
  Dist dmin() const { return dmin_; }
  /// Diameter.
  Dist dmax() const { return dmax_; }
  /// Aspect ratio Δ = dmax / dmin.
  double aspect_ratio() const { return dmax_ / dmin_; }

  /// Number of levels "i in [log n]": ceil(log2 n), at least 1.
  int num_levels() const { return num_levels_; }

  /// Number of distance scales "j in [log Δ]": floor(log2 Δ) + 1, at least 1.
  int num_scales() const { return num_scales_; }

 protected:
  explicit ProximityIndex(const MetricSpace& metric);

  /// Derives num_levels/num_scales once the subclass has set dmin_/dmax_.
  void init_scales();

  const MetricSpace& metric_;
  std::size_t n_;
  Dist dmin_ = kInfDist;
  Dist dmax_ = 0.0;

 private:
  int num_levels_ = 1;
  int num_scales_ = 1;
};

class DenseProximityIndex final : public ProximityIndex {
 public:
  /// Largest n the dense backend will build. Rows cost n^2 * 12 bytes
  /// (~4.8 GB at the cap); beyond it a typo'd n must fail loudly, not OOM
  /// the machine — use SparseProximityIndex (or lower n).
  static constexpr std::size_t kMaxDenseNodes = 20000;

  /// Builds the per-node distance-sorted rows. Row construction is
  /// independent across nodes and runs on `num_threads` threads
  /// (0 = one per hardware core, or serial for small metrics); results are
  /// identical for any thread count. `metric.distance()` must be safe to
  /// call concurrently.
  ///
  /// Parallel-construction handoff: each worker writes only its own slice
  /// of rows_ and its own dmin/dmax accumulator slot; the spawning thread
  /// reads them strictly after join() (the happens-before edge TSan checks
  /// — the tsan.* stress shard builds the index multi-threaded and asserts
  /// bit-identical results against a serial build). No locks, so no
  /// thread-safety annotations: disjointness is the whole contract.
  explicit DenseProximityIndex(const MetricSpace& metric,
                               unsigned num_threads = 0);

  bool has_full_rows() const override { return true; }
  std::span<const Neighbor> row(NodeId u) const override;
  std::span<const Neighbor> ball(NodeId u, Dist r) const override;
  std::size_t ball_size(NodeId u, Dist r) const override {
    return ball(u, r).size();
  }
  BallIds ball_ids(NodeId u, Dist r) const override;
  Dist kth_radius(NodeId u, std::size_t k) const override;

 private:
  std::vector<Neighbor> rows_;  // n_ consecutive sorted rows of length n_
};

}  // namespace ron
