#include "metric/proximity.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/check.h"

namespace ron {

ProximityIndex::ProximityIndex(const MetricSpace& metric)
    : metric_(metric), n_(metric.n()) {
  RON_CHECK(n_ >= 2, "ProximityIndex needs >= 2 nodes");
  rows_.resize(n_ * n_);
  for (NodeId u = 0; u < n_; ++u) {
    Neighbor* r = &rows_[static_cast<std::size_t>(u) * n_];
    for (NodeId v = 0; v < n_; ++v) {
      r[v] = Neighbor{metric_.distance(u, v), v};
    }
    std::sort(r, r + n_, [](const Neighbor& a, const Neighbor& b) {
      if (a.d != b.d) return a.d < b.d;
      return a.v < b.v;
    });
    RON_CHECK(r[0].v == u && r[0].d == 0.0,
              "row must start with (0, u); duplicate points?");
    RON_CHECK(r[1].d > 0.0, "duplicate point detected at node " << u);
    dmin_ = std::min(dmin_, r[1].d);
    dmax_ = std::max(dmax_, r[n_ - 1].d);
  }
  num_levels_ = std::max(1, ceil_log2(n_));
  num_scales_ = std::max(1, floor_log2_real(aspect_ratio()) + 1);
}

std::span<const ProximityIndex::Neighbor> ProximityIndex::row(NodeId u) const {
  RON_CHECK(u < n_);
  return {&rows_[static_cast<std::size_t>(u) * n_], n_};
}

std::span<const ProximityIndex::Neighbor> ProximityIndex::ball(NodeId u,
                                                               Dist r) const {
  auto rw = row(u);
  if (r < 0.0) return rw.subspan(0, 0);
  // Last index with d <= r (closed ball).
  auto it = std::upper_bound(
      rw.begin(), rw.end(), r,
      [](Dist rr, const Neighbor& nb) { return rr < nb.d; });
  return rw.subspan(0, static_cast<std::size_t>(it - rw.begin()));
}

Dist ProximityIndex::kth_radius(NodeId u, std::size_t k) const {
  RON_CHECK(k >= 1 && k <= n_, "kth_radius: k out of range");
  return row(u)[k - 1].d;
}

Dist ProximityIndex::rank_radius(NodeId u, double eps) const {
  RON_CHECK(eps > 0.0 && eps <= 1.0, "rank_radius: eps in (0,1]");
  auto k = static_cast<std::size_t>(
      std::ceil(eps * static_cast<double>(n_) - 1e-12));
  if (k < 1) k = 1;
  if (k > n_) k = n_;
  return kth_radius(u, k);
}

Dist ProximityIndex::level_radius(NodeId u, int i) const {
  RON_CHECK(i >= 0, "level_radius: i >= 0 (use level_radius_prev for i-1)");
  const double eps = std::ldexp(1.0, -i);  // 2^-i
  if (eps >= 1.0) return kth_radius(u, n_);
  return rank_radius(u, eps);
}

NodeId ProximityIndex::nearest_in(NodeId u,
                                  std::span<const NodeId> candidates) const {
  NodeId best = kInvalidNode;
  Dist best_d = kInfDist;
  for (NodeId v : candidates) {
    const Dist d = dist(u, v);
    if (d < best_d || (d == best_d && v < best)) {
      best = v;
      best_d = d;
    }
  }
  return best;
}

}  // namespace ron
