#include "metric/proximity.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <limits>
#include <thread>
#include <vector>

#include "common/bits.h"
#include "common/check.h"

namespace ron {

ProximityIndex::ProximityIndex(const MetricSpace& metric)
    : metric_(metric), n_(metric.n()) {
  RON_CHECK(n_ >= 2, "ProximityIndex needs >= 2 nodes");
}

void ProximityIndex::init_scales() {
  num_levels_ = std::max(1, ceil_log2(n_));
  num_scales_ = std::max(1, floor_log2_real(aspect_ratio()) + 1);
}

std::span<const ProximityIndex::Neighbor> ProximityIndex::row(NodeId u) const {
  RON_CHECK(false, "ProximityIndex: full rows are dense-backend only "
                   "(backend for n=" << n_ << " node " << u
                   << " has no row storage); query ball_ids/kth_radius, or "
                   "build a DenseProximityIndex");
  return {};
}

std::span<const ProximityIndex::Neighbor> ProximityIndex::ball(NodeId u,
                                                               Dist r) const {
  RON_CHECK(false, "ProximityIndex: ball() spans are dense-backend only "
                   "(node " << u << ", r=" << r
                   << "); use ball_ids/ball_size, or build a "
                   "DenseProximityIndex");
  return {};
}

std::vector<ProximityIndex::Neighbor> ProximityIndex::row_prefix(
    NodeId u, std::size_t k) const {
  RON_CHECK(k >= 1 && k <= n_, "row_prefix: k=" << k << ", n=" << n_);
  const Dist r = kth_radius(u, k);
  std::vector<Neighbor> out;
  ball_ids(u, r).for_each(
      [&](NodeId v) { out.push_back({metric_.distance(u, v), v}); });
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.d != b.d) return a.d < b.d;
    return a.v < b.v;
  });
  out.resize(k);
  return out;
}

Dist ProximityIndex::rank_radius(NodeId u, double eps) const {
  RON_CHECK(eps > 0.0 && eps <= 1.0, "rank_radius: eps in (0,1]");
  auto k = static_cast<std::size_t>(
      std::ceil(eps * static_cast<double>(n_) - 1e-12));
  if (k < 1) k = 1;
  if (k > n_) k = n_;
  return kth_radius(u, k);
}

Dist ProximityIndex::level_radius(NodeId u, int i) const {
  RON_CHECK(i >= 0, "level_radius: i >= 0 (use level_radius_prev for i-1)");
  // k = ceil(n / 2^i) in exact integer arithmetic: floor((n-1) / 2^i) + 1
  // for n >= 1. Once 2^i >= n the level holds a single node; shifting by
  // >= the width of size_t is undefined, so clamp those i to k = 1.
  std::size_t k = 1;
  if (i < std::numeric_limits<std::size_t>::digits) {
    k = ((n_ - 1) >> i) + 1;
  }
  return kth_radius(u, k);
}

NodeId ProximityIndex::nearest_in(NodeId u,
                                  std::span<const NodeId> candidates) const {
  NodeId best = kInvalidNode;
  Dist best_d = kInfDist;
  for (NodeId v : candidates) {
    const Dist d = dist(u, v);
    if (d < best_d || (d == best_d && v < best)) {
      best = v;
      best_d = d;
    }
  }
  return best;
}

DenseProximityIndex::DenseProximityIndex(const MetricSpace& metric,
                                         unsigned num_threads)
    : ProximityIndex(metric) {
  RON_CHECK(n_ <= kMaxDenseNodes,
            "DenseProximityIndex: n=" << n_ << " exceeds the dense-backend "
            "cap of " << kMaxDenseNodes << " nodes (rows would need "
            << (n_ * n_ * sizeof(Neighbor)) << " bytes); use "
            "SparseProximityIndex for large metrics");
  rows_.resize(n_ * n_);

  // Each row only touches its own slice of rows_, so rows build
  // independently; dmin/dmax are reduced per worker and merged after join.
  auto build_rows = [this](NodeId begin, NodeId end, Dist& dmin_out,
                           Dist& dmax_out) {
    Dist dmin = kInfDist;
    Dist dmax = 0.0;
    for (NodeId u = begin; u < end; ++u) {
      Neighbor* r = &rows_[static_cast<std::size_t>(u) * n_];
      for (NodeId v = 0; v < n_; ++v) {
        r[v] = Neighbor{metric_.distance(u, v), v};
      }
      std::sort(r, r + n_, [](const Neighbor& a, const Neighbor& b) {
        if (a.d != b.d) return a.d < b.d;
        return a.v < b.v;
      });
      RON_CHECK(r[0].v == u && r[0].d == 0.0,
                "row must start with (0, u); duplicate points?");
      RON_CHECK(r[1].d > 0.0, "duplicate point detected at node " << u);
      dmin = std::min(dmin, r[1].d);
      dmax = std::max(dmax, r[n_ - 1].d);
    }
    dmin_out = dmin;
    dmax_out = dmax;
  };

  if (num_threads == 0) {
    // Auto: one thread per core, except below a size where the whole build
    // is microseconds of work and spawn/join would dominate. An explicit
    // num_threads > 1 is always honored.
    num_threads =
        n_ < 256 ? 1 : std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = static_cast<unsigned>(
      std::min<std::size_t>(num_threads, n_));

  if (num_threads <= 1) {
    build_rows(0, static_cast<NodeId>(n_), dmin_, dmax_);
  } else {
    const std::size_t chunk = (n_ + num_threads - 1) / num_threads;
    std::vector<Dist> mins(num_threads, kInfDist);
    std::vector<Dist> maxs(num_threads, 0.0);
    std::vector<std::exception_ptr> errors(num_threads);
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    try {
      for (unsigned t = 0; t < num_threads; ++t) {
        const auto begin = static_cast<NodeId>(std::min(n_, t * chunk));
        const auto end = static_cast<NodeId>(std::min(n_, (t + 1) * chunk));
        workers.emplace_back([&, t, begin, end] {
          try {
            build_rows(begin, end, mins[t], maxs[t]);
          } catch (...) {
            errors[t] = std::current_exception();
          }
        });
      }
    } catch (...) {
      // Thread spawn failed (resource limit): join what started, then
      // propagate instead of letting ~thread() call std::terminate.
      for (std::thread& w : workers) w.join();
      throw;
    }
    for (std::thread& w : workers) w.join();
    // RON_CHECK throws on invalid input (e.g. duplicate points); surface the
    // first worker failure with its original message.
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    dmin_ = *std::min_element(mins.begin(), mins.end());
    dmax_ = *std::max_element(maxs.begin(), maxs.end());
  }

  init_scales();
}

std::span<const ProximityIndex::Neighbor> DenseProximityIndex::row(
    NodeId u) const {
  RON_CHECK(u < n_, "node u=" << u << ", n=" << n_);
  return {&rows_[static_cast<std::size_t>(u) * n_], n_};
}

std::span<const ProximityIndex::Neighbor> DenseProximityIndex::ball(
    NodeId u, Dist r) const {
  auto rw = row(u);
  if (r < 0.0) return rw.subspan(0, 0);
  // Last index with d <= r (closed ball).
  auto it = std::upper_bound(
      rw.begin(), rw.end(), r,
      [](Dist rr, const Neighbor& nb) { return rr < nb.d; });
  return rw.subspan(0, static_cast<std::size_t>(it - rw.begin()));
}

BallIds DenseProximityIndex::ball_ids(NodeId u, Dist r) const {
  auto b = ball(u, r);
  std::vector<NodeId> ids;
  ids.reserve(b.size());
  for (const Neighbor& nb : b) ids.push_back(nb.v);
  std::sort(ids.begin(), ids.end());
  return BallIds::from_sorted_ids(std::move(ids));
}

Dist DenseProximityIndex::kth_radius(NodeId u, std::size_t k) const {
  RON_CHECK(k >= 1 && k <= n_, "kth_radius: k out of range");
  return row(u)[k - 1].d;
}

}  // namespace ron
