// One-dimensional metrics, including the paper's canonical hard instance.
//
// The geometric ("exponential") line {b^0, b^1, ..., b^(n-1)} is the paper's
// running example of a doubling metric whose aspect ratio Δ is exponential in
// n while the doubling dimension stays constant (§1). It is the instance on
// which the O(log n)-hop small worlds of Theorem 5.2 separate from the naive
// O(log Δ)-hop construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metric/metric_space.h"

namespace ron {

/// Points x_i = base^i on the real line, i in [n]. base must be in (1, 2] and
/// base^(n-1) must fit in a double.
class GeometricLineMetric final : public MetricSpace {
 public:
  GeometricLineMetric(std::size_t n, double base = 2.0);

  std::size_t n() const override { return n_; }
  Dist distance(NodeId u, NodeId v) const override;
  std::string name() const override { return name_; }

  /// Ids are sorted along the line: sparse proximity via LineSource.
  std::unique_ptr<PointSource> make_point_source() const override;

  double coordinate(NodeId u) const { return coords_[u]; }
  double base() const { return base_; }

 private:
  std::size_t n_;
  double base_;
  std::vector<double> coords_;
  std::string name_;
};

/// Points 0, s, 2s, ... on the line (doubling dimension 1, aspect ratio n-1).
class UniformLineMetric final : public MetricSpace {
 public:
  explicit UniformLineMetric(std::size_t n, double spacing = 1.0);

  std::size_t n() const override { return n_; }
  Dist distance(NodeId u, NodeId v) const override;
  std::string name() const override { return "uniform-line"; }

  /// Ids are sorted along the line: sparse proximity via LineSource.
  std::unique_ptr<PointSource> make_point_source() const override;

 private:
  std::size_t n_;
  double spacing_;
};

/// n points evenly spaced on a circle, with arc-length (cycle) distance.
class RingMetric final : public MetricSpace {
 public:
  explicit RingMetric(std::size_t n, double spacing = 1.0);

  std::size_t n() const override { return n_; }
  Dist distance(NodeId u, NodeId v) const override;
  std::string name() const override { return "ring"; }

  /// Ids are sorted around the cycle: sparse proximity via RingSource.
  std::unique_ptr<PointSource> make_point_source() const override;

 private:
  std::size_t n_;
  double spacing_;
};

}  // namespace ron
