// Carving a shared overlay into per-node local state.
//
// ScenarioBuilder materializes the usual god's-eye structures (metric rows,
// rings container, directory). The partitioner slices them into SimNodes:
// node u receives copies of exactly its own rings, its neighbor union, its
// label, the ids of the copies it holds — and the directory entries whose
// home u is. Homes come from a deterministic hash sequence over the object
// NAME (reusing wire.h's FNV-1a), so any node can compute where an entry
// should live without global state: candidate i is
//     home_of(name, i) = (fnv1a64(name) + i * golden) mod n
// and the entry lives at the first alive candidate, found by probing. At
// partition time every node is alive, so each entry starts at candidate 0.
//
// The metric itself stays shared (read-only) as the transport's geography:
// link latencies and the "measure distance to a neighbor" primitive are
// treated as ping infrastructure every real deployment has, not as protocol
// state — messages and per-node bytes are accounted, metric lookups are not.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/rings.h"
#include "labeling/distance_labels.h"
#include "location/object_directory.h"
#include "metric/proximity.h"
#include "sim/sim_node.h"

namespace ron::sim {

/// The carved network the Simulator runs: per-node local state plus the
/// shared read-only geography.
struct SimNetwork {
  const ProximityIndex* prox = nullptr;
  std::vector<SimNode> nodes;
  /// Sim-global object name table (ObjectId -> name). Ids are carved from
  /// the initial directory; churn-created names are appended by
  /// Simulator::register_object.
  std::vector<std::string> object_names;
  /// location_hop_bound(n), cached for accounting.
  std::size_t hop_bound = 0;
};

/// Candidate `rank` of `name`'s directory home sequence over n nodes.
NodeId home_of(const std::string& name, std::uint32_t rank, std::size_t n);

/// Slices (prox, rings, directory[, labels]) into a SimNetwork. `prox` and
/// `labels` must outlive the returned network (rings and directory are
/// copied; the metric and labels are borrowed read-only).
SimNetwork partition_overlay(const ProximityIndex& prox,
                             const RingsOfNeighbors& rings,
                             const ObjectDirectory& dir,
                             const DistanceLabeling* labels = nullptr);

}  // namespace ron::sim
