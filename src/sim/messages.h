// The simulator's typed message set.
//
// Under the protocol view a locate is not one in-process walk but a chain of
// messages: the querier probes the object's directory home sequence
// (DIR_LOOKUP → DIR_REPLY/DIR_MISS), then launches a greedy ring-walk of
// LOCATE_STEP messages that ends in a LOCATE_FOUND or LOCATE_NACK back to
// the querier. Publish/unpublish/handoff maintain the directory, the
// join/leave announcements maintain neighbor liveness beliefs, and the
// estimate pair exercises the distance-labeling exchange. BOUNCE is the
// transport's undeliverable notification (ICMP-style: it echoes the failed
// message so the sender can reroute or re-probe statelessly).
//
// Byte accounting is honest: wire_bytes() prices each message by encoding
// exactly the fields it carries through oracle/wire.h's WireWriter — the
// same little-endian encoding the snapshot layer ships — so "bytes on the
// wire" means real serialized cost, not sizeof(struct).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "labeling/distance_labels.h"
#include "oracle/wire.h"

namespace ron::sim {

enum class SimMsgType : std::uint8_t {
  kDirLookup = 0,    // querier → home candidate: who holds obj?
  kDirReply,         // home → querier: the holder set
  kDirMiss,          // candidate → coordinator: no entry here, echo fields
  kDirPublish,       // holder → home candidate: add me to obj's holders
  kDirUnpublish,     // ex-holder → home candidate: remove me
  kDirAck,           // home → coordinator: directory op applied
  kDirHandoff,       // leaver → next candidate: adopt this hosted entry
  kLocateStep,       // one greedy ring-walk hop toward the target copy
  kLocateFound,      // target holder → querier: copy confirmed, walk stats
  kLocateNack,       // walker/holder → querier: walk failed (reason below)
  kJoinAnnounce,     // rejoiner → every remembered neighbor: I am back
  kJoinAck,          // neighbor → rejoiner: heard you, I am alive too
  kLeaveAnnounce,    // leaver → believed-alive neighbors: tombstone me
  kEstimateReq,      // ask a node for its distance label
  kEstimateReply,    // the label, priced at its snapshot encoding
  kBounce,           // transport: destination inactive, echo of the failure
};

const char* to_string(SimMsgType t);

/// Nack reasons (LOCATE_NACK.reason).
enum class SimNackReason : std::uint8_t {
  kStuck = 0,        // greedy walk has no contact closer to the target
  kStaleHolder,      // reached the target but the copy is gone
  kHopBudget,        // walk exceeded the configured max hops
};

/// "No candidate seen yet" sentinel for the dir-probe first_alive field.
inline constexpr std::uint32_t kNoAliveCandidate = 0xffffffffu;

/// One message in flight. A plain value: the event queue owns copies, so
/// in-flight state survives its sender leaving the overlay. Fields are a
/// union-of-needs — wire_bytes() prices only the ones the type carries.
struct SimMessage {
  SimMsgType type = SimMsgType::kLocateStep;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;

  /// Nonzero ties the message to one locate chain (lookup/reply/steps/
  /// found/nack); zero marks directory-maintenance and liveness traffic.
  std::uint64_t locate_id = 0;
  ObjectId obj = kInvalidObject;
  /// Object name: the directory key hashed into the home sequence, carried
  /// by every directory op (and needed to create entries on first publish).
  std::string name;
  /// Locate chain: the querier every reply routes back to.
  NodeId origin = kInvalidNode;
  /// Walk target copy (steps), confirmed holder (found), or the holder
  /// being (un)published / announced.
  NodeId subject = kInvalidNode;
  std::uint32_t hops = 0;
  double path_length = 0.0;
  /// Directory ops: index in the object's home sequence being probed.
  std::uint32_t probe = 0;
  /// Stateless publish probing: lowest probe index that answered DIR_MISS
  /// (alive, entry-less) so far; echoed by every miss/bounce.
  std::uint32_t first_alive = kNoAliveCandidate;
  /// Publish retry after a fully-missed probe sweep: create the entry here.
  bool create = false;
  std::uint8_t reason = 0;  // SimNackReason for kLocateNack
  /// DIR_REPLY / DIR_HANDOFF payload: the holder set.
  std::vector<NodeId> holders;
  /// kEstimateReply payload (borrowed from the owning SimNode; labels are
  /// immutable for a run).
  const DlsLabel* label = nullptr;
  /// kBounce: the type of the echoed (undeliverable) message.
  SimMsgType failed_type = SimMsgType::kLocateStep;
};

/// Serialized size of the snapshot-layer encoding of a label (the payload
/// cost of an ESTIMATE reply, and of a label inside SimNode::state_bytes).
void write_label(WireWriter& w, const DlsLabel& label);

/// Serialized size of `m` in the wire.h encoding (header + the fields the
/// type actually carries; a bounce prices the echoed message too).
std::size_t wire_bytes(const SimMessage& m);

}  // namespace ron::sim
