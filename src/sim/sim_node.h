// A simulated node: strictly local state, as the paper's model demands.
//
// Everything a SimNode knows was either carved out of the shared overlay by
// the partitioner (its own X/Y rings, its label, the directory entries whose
// home it is, the copies it holds) or learned from received messages (the
// tombstones — neighbors it believes dead). Nothing here references the
// god's-eye structures the in-process LocationService walks; the simulator
// event loop is the only router between nodes.
//
// state_bytes() prices the whole local state in the wire.h encoding, so the
// "per-node state" the theorems bound is measured in real serialized bytes,
// consistent with the message accounting in messages.h.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/rings.h"
#include "labeling/distance_labels.h"

namespace ron::sim {

class SimNode {
 public:
  /// One directory entry this node is the current home of.
  struct HostedEntry {
    std::string name;
    std::vector<NodeId> holders;  // sorted unique
    /// Index in the object's home sequence at which this node adopted the
    /// entry; a graceful leave hands the entry to the next index.
    std::uint32_t home_rank = 0;
  };

  NodeId id = kInvalidNode;
  bool active = true;
  /// This node's rings, copied out of the shared overlay at partition time.
  /// Ring membership is static for a run; liveness belief lives in
  /// `tombstones` instead, so a rejoining neighbor is un-tombstoned without
  /// resampling any ring.
  std::vector<Ring> rings;
  /// Sorted-unique union of all ring members (the node's contact list
  /// before liveness filtering).
  std::vector<NodeId> neighbors;
  /// Neighbors this node believes dead (sorted unique); learned from
  /// LEAVE_ANNOUNCE and transport bounces, reverted by JOIN traffic.
  std::vector<NodeId> tombstones;
  /// Object copies held here (sorted unique object ids).
  std::vector<ObjectId> held;
  /// Directory entries hosted here (std::map: deterministic iteration
  /// order, e.g. for a leaver's handoff sequence).
  std::map<ObjectId, HostedEntry> hosted;
  /// Borrowed distance label (immutable for a run); null when the scenario
  /// carves no labeling.
  const DlsLabel* label = nullptr;

  bool believes_dead(NodeId w) const;
  void tombstone(NodeId w);
  void revive(NodeId w);

  /// The live contact list greedy routing sees: `neighbors` minus
  /// `tombstones`. With no tombstones this is the neighbor union itself
  /// (no copy — and bit-identical to RingsOfNeighbors::all_neighbors, which
  /// the zero-churn differential tests rely on); otherwise the filtered
  /// list is built into `scratch`.
  std::span<const NodeId> contacts(std::vector<NodeId>& scratch) const;

  bool holds(ObjectId obj) const;
  void add_copy(ObjectId obj);
  void drop_copy(ObjectId obj);

  HostedEntry* hosted_find(ObjectId obj);

  /// Serialized size of the node's local state (rings, tombstones, held
  /// copies, hosted entries, label) in the wire.h encoding.
  std::uint64_t state_bytes() const;
};

}  // namespace ron::sim
