// The deterministic discrete-event message-passing simulator.
//
// One priority queue of timestamped events (messages in flight, churn ops,
// locate/estimate issues), popped in (virtual time, sequence) order; ties
// break on the monotone sequence number, so a run is a pure function of
// (carved network, options, schedule) — bit-reproducible across machines.
// Per-link latency comes from the scenario metric (LatencyParams) plus a
// seeded jitter drawn at post time.
//
// Protocol summary (see messages.h for the message set):
//
//   locate     querier probes the object's home sequence (DIR_LOOKUP until a
//              DIR_REPLY), picks the nearest returned holder and launches a
//              chain of LOCATE_STEP messages, each delivered hop re-running
//              greedy_next_hop on the *local* contact list. Terminates in
//              LOCATE_FOUND or LOCATE_NACK at the querier; failed attempts
//              retry after a delay, a bounded number of times.
//   churn      a leave announces itself to believed-alive neighbors, hands
//              hosted directory entries to the next home candidates and
//              unpublishes its copies — all asynchronously, racing whatever
//              is in flight. A join reactivates the node's cached rings and
//              re-probes every remembered neighbor (JOIN_ANNOUNCE/ACK). A
//              node that left keeps servicing bounces of chains it
//              originated ("graceful-leave linger").
//   failure    delivery to an inactive node turns into a BOUNCE to the
//              sender, which tombstones the peer and reroutes (walks),
//              advances its probe (directory chains) or abandons (replies
//              to a dead querier). Every message is thereby accounted as
//              delivered or bounced — "zero lost messages" is checkable as
//              sent == delivered + bounced with a drained queue.
//
// Accounting lands in a telemetry::MetricsRegistry under ron_sim_* names
// (messages, bytes via wire.h encodings, hop/stretch/probe histograms,
// per-node state bytes) and in plain SimTotals/SimLocateResult values the
// tests and bench assert on even when telemetry is compiled out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "churn/churn_trace.h"
#include "common/rng.h"
#include "common/types.h"
#include "sim/messages.h"
#include "sim/partition.h"
#include "sim/sim_clock.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace ron::sim {

struct SimOptions {
  std::uint64_t seed = 42;
  LatencyParams latency;
  /// Home-sequence probe budget for every directory chain.
  std::uint32_t max_dir_probes = 32;
  /// Locate attempts (initial + retries) before giving up.
  std::uint32_t max_attempts = 3;
  /// Walk budget per attempt; mirrors LocateOptions::max_hops so the
  /// zero-churn differential against LocationService is exact.
  std::size_t max_hops = 10000;
  /// Virtual backoff before a locate retry — enough for a leaver's
  /// unpublish chain to land, so the retry sees a fresher directory.
  std::uint64_t retry_delay_ns = 100000;
};

enum class SimLocateOutcome : std::uint8_t {
  kFound = 0,
  kNoHolders,     // directory entry exists but every copy is unpublished
  kStuck,         // greedy walk had no closer live contact (all attempts)
  kStaleHolder,   // reached the target, the copy was gone (all attempts)
  kHopBudget,     // walk exceeded max_hops (all attempts)
  kDirExhausted,  // no home candidate answered within max_dir_probes
  kAbandoned,     // the querier left the overlay mid-locate
};

const char* to_string(SimLocateOutcome o);

/// One finished locate, protocol-side view (compare LocateResult).
struct SimLocateResult {
  std::uint64_t locate_id = 0;
  NodeId origin = kInvalidNode;
  ObjectId obj = kInvalidObject;
  SimLocateOutcome outcome = SimLocateOutcome::kAbandoned;
  bool found = false;
  NodeId holder = kInvalidNode;
  std::uint32_t hops = 0;
  std::uint32_t attempts = 1;
  Dist nearest_dist = 0.0;
  double path_length = 0.0;
  double route_stretch = 1.0;
  /// Messages/bytes attributable to this locate's chains (all attempts).
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t issued_ns = 0;
  std::uint64_t completed_ns = 0;
  /// Hop-by-hop trace of the final attempt (the differential spine).
  LocateTrace trace;
};

/// Plain aggregate counters, independent of compiled-in telemetry.
struct SimTotals {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t bounced = 0;
  std::uint64_t bytes = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t retries = 0;
  std::uint64_t chain_drops = 0;  // directory chains that exhausted probes
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t publishes = 0;
  std::uint64_t unpublishes = 0;
  std::uint64_t locates_issued = 0;
  std::uint64_t locates_found = 0;
  std::uint64_t locates_failed = 0;
  std::uint64_t locates_abandoned = 0;
  std::uint64_t locates_skipped = 0;  // querier already gone at issue time
  std::uint64_t estimates_done = 0;
  std::uint64_t estimates_failed = 0;
};

class Simulator {
 public:
  Simulator(SimNetwork net, const SimOptions& opts);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Maps an object name to its sim-global id, appending churn-created
  /// names to the table (callers translate ChurnTrace object indices
  /// through this before schedule_churn).
  ObjectId register_object(const std::string& name);

  /// Issues a locate at virtual time at_ns (skipped with a counter if the
  /// querier is inactive by then).
  void schedule_locate(std::uint64_t at_ns, NodeId origin, ObjectId obj);
  /// Injects one churn op at at_ns. op.object must be a sim-global id
  /// (see register_object); strict op semantics are RON_CHECKed.
  void schedule_churn(std::uint64_t at_ns, const ChurnOp& op);
  /// Issues a label exchange a→b at at_ns (requires carved labels).
  void schedule_estimate(std::uint64_t at_ns, NodeId a, NodeId b);

  /// Runs the event loop until the queue drains, then records the end-state
  /// metrics (per-node state bytes, liveness gauges).
  void run();

  const std::vector<SimLocateResult>& results() const { return results_; }
  const SimTotals& totals() const { return totals_; }
  MetricsRegistry& metrics() { return registry_; }
  const SimNetwork& network() const { return net_; }
  std::size_t n() const { return net_.nodes.size(); }
  std::size_t hop_bound() const { return net_.hop_bound; }
  std::uint64_t now_ns() const { return clock_.now_ns(); }

  /// Deterministic event log (one line per delivery/bounce/churn op/locate
  /// completion); null disables. Two equal-seed runs emit identical logs.
  void set_event_log(std::ostream* os) { log_ = os; }
  /// Optional sink for the completed locates' traces (fed into the
  /// ron.metrics.v1 envelope by the CLI).
  void set_trace_sink(TraceSink* sink) { traces_ = sink; }

 private:
  struct SimEvent {
    std::uint64_t at_ns = 0;
    std::uint64_t seq = 0;
    enum class Kind : std::uint8_t {
      kDeliver,
      kChurn,
      kLocateIssue,
      kLocateRetry,
      kEstimateIssue,
    } kind = Kind::kDeliver;
    SimMessage msg;
    ChurnOp op;
    NodeId a = kInvalidNode;
    NodeId b = kInvalidNode;
    ObjectId obj = kInvalidObject;
    std::uint64_t locate_id = 0;
  };
  struct EventAfter {
    bool operator()(const SimEvent& x, const SimEvent& y) const {
      return x.at_ns != y.at_ns ? x.at_ns > y.at_ns : x.seq > y.seq;
    }
  };

  /// In-flight bookkeeping for one locate (all protocol state that is NOT
  /// per-node lives here, owned by the simulated querier).
  struct PendingLocate {
    NodeId origin = kInvalidNode;
    ObjectId obj = kInvalidObject;
    std::uint32_t attempt = 1;
    std::uint32_t probe = 0;
    NodeId target = kInvalidNode;
    Dist nearest_dist = 0.0;
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::uint64_t issued_ns = 0;
    LocateTrace trace;
  };

  void push_event(SimEvent ev);
  /// Posts a message: prices it, accounts it (globally and to its locate
  /// chain), draws the link latency and enqueues the delivery.
  void post(SimMessage msg);
  std::uint64_t link_latency_ns(NodeId u, NodeId v);
  NodeId greedy_from(const SimNode& at, NodeId target);
  void log_line(const char* verb, const SimMessage& m);

  void handle_deliver(const SimMessage& m);
  void handle_bounce_notice(const SimMessage& m);
  void handle_dir_lookup(const SimMessage& m);
  void handle_dir_reply(const SimMessage& m);
  void handle_dir_miss(const SimMessage& m);
  void handle_dir_publish(const SimMessage& m);
  void handle_dir_unpublish(const SimMessage& m);
  void handle_dir_handoff(const SimMessage& m);
  void handle_locate_step(const SimMessage& m);
  void handle_locate_found(const SimMessage& m);
  void handle_locate_nack(const SimMessage& m);
  void handle_estimate_req(const SimMessage& m);
  void handle_estimate_reply(const SimMessage& m);

  /// Resumes a stateless directory chain after a DIR_MISS (alive_miss) or a
  /// bounce: advance the probe, track first_alive, re-target the next home
  /// candidate; on exhaustion either enter the publish create phase or drop
  /// the chain with a counter.
  void continue_dir_chain(const SimMessage& echo, bool alive_miss);

  void do_join(NodeId u);
  void do_leave(NodeId u);
  void do_publish(NodeId v, ObjectId obj);
  void do_unpublish(NodeId v, ObjectId obj);

  void issue_locate(NodeId origin, ObjectId obj);
  /// (Re)starts an attempt: probe 0, DIR_LOOKUP at home candidate 0.
  void start_attempt(std::uint64_t locate_id);
  void walk_or_finish(std::uint64_t locate_id, PendingLocate& p);
  /// NACKs the walk back to the querier (named so the sockets lint rule
  /// keeps matching only the raw syscall).
  void send_nack(NodeId from, const SimMessage& m, SimNackReason why);
  void maybe_retry(std::uint64_t locate_id, SimLocateOutcome would_be,
                   std::uint32_t hops);
  void complete_found(std::uint64_t locate_id, NodeId holder,
                      std::uint32_t hops, double path_length);
  void finish_failed(std::uint64_t locate_id, SimLocateOutcome outcome,
                     std::uint32_t hops);
  void abandon_locate(std::uint64_t locate_id);

  SimNetwork net_;
  SimOptions opts_;
  SimClock clock_;
  Rng rng_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_locate_id_ = 1;
  std::priority_queue<SimEvent, std::vector<SimEvent>, EventAfter> queue_;
  std::map<std::uint64_t, PendingLocate> pending_;
  std::vector<SimLocateResult> results_;
  SimTotals totals_;
  MetricsRegistry registry_{1};
  std::ostream* log_ = nullptr;
  TraceSink* traces_ = nullptr;
  std::vector<NodeId> scratch_;
};

}  // namespace ron::sim
