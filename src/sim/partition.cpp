#include "sim/partition.h"

#include <span>

#include "common/check.h"
#include "location/location_service.h"
#include "oracle/wire.h"

namespace ron::sim {

NodeId home_of(const std::string& name, std::uint32_t rank, std::size_t n) {
  RON_CHECK(n >= 1, "home_of: empty overlay for object '" << name << "'");
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(name.data());
  const std::uint64_t h = fnv1a64(std::span(bytes, name.size()));
  // Golden-ratio stride: successive candidates are spread over the id
  // space; an occasional collision between ranks merely wastes one probe.
  constexpr std::uint64_t kStride = 0x9e3779b97f4a7c15ULL;
  return static_cast<NodeId>(
      (h + static_cast<std::uint64_t>(rank) * kStride) % n);
}

SimNetwork partition_overlay(const ProximityIndex& prox,
                             const RingsOfNeighbors& rings,
                             const ObjectDirectory& dir,
                             const DistanceLabeling* labels) {
  const std::size_t n = prox.n();
  RON_CHECK(rings.n() == n, "partition_overlay: rings over " << rings.n()
                                << " nodes, metric has " << n);
  RON_CHECK(dir.n() == n, "partition_overlay: directory over " << dir.n()
                              << " nodes, metric has " << n);
  RON_CHECK(labels == nullptr || labels->n() == n,
            "partition_overlay: labeling over "
                << (labels != nullptr ? labels->n() : 0)
                << " nodes, metric has " << n);

  SimNetwork net;
  net.prox = &prox;
  net.hop_bound = location_hop_bound(n);
  net.nodes.resize(n);
  for (NodeId u = 0; u < n; ++u) {
    SimNode& node = net.nodes[u];
    node.id = u;
    node.active = true;
    const std::span<const Ring> rs = rings.rings(u);
    node.rings.assign(rs.begin(), rs.end());
    node.neighbors = rings.all_neighbors(u);
    if (labels != nullptr) node.label = &labels->label(u);
  }

  net.object_names.reserve(dir.num_objects());
  for (ObjectId obj = 0; obj < dir.num_objects(); ++obj) {
    const std::string& name = dir.name(obj);
    net.object_names.push_back(name);
    const std::span<const NodeId> holders = dir.holders(obj);
    for (const NodeId h : holders) net.nodes[h].add_copy(obj);
    // Every node is alive at partition time: the entry hosts at rank 0.
    const NodeId home = home_of(name, 0, n);
    net.nodes[home].hosted[obj] =
        SimNode::HostedEntry{name, {holders.begin(), holders.end()}, 0};
  }
  return net;
}

}  // namespace ron::sim
