#include "sim/messages.h"

#include "common/check.h"

namespace ron::sim {

const char* to_string(SimMsgType t) {
  switch (t) {
    case SimMsgType::kDirLookup: return "DIR_LOOKUP";
    case SimMsgType::kDirReply: return "DIR_REPLY";
    case SimMsgType::kDirMiss: return "DIR_MISS";
    case SimMsgType::kDirPublish: return "DIR_PUBLISH";
    case SimMsgType::kDirUnpublish: return "DIR_UNPUBLISH";
    case SimMsgType::kDirAck: return "DIR_ACK";
    case SimMsgType::kDirHandoff: return "DIR_HANDOFF";
    case SimMsgType::kLocateStep: return "LOCATE_STEP";
    case SimMsgType::kLocateFound: return "LOCATE_FOUND";
    case SimMsgType::kLocateNack: return "LOCATE_NACK";
    case SimMsgType::kJoinAnnounce: return "JOIN_ANNOUNCE";
    case SimMsgType::kJoinAck: return "JOIN_ACK";
    case SimMsgType::kLeaveAnnounce: return "LEAVE_ANNOUNCE";
    case SimMsgType::kEstimateReq: return "ESTIMATE_REQ";
    case SimMsgType::kEstimateReply: return "ESTIMATE_REPLY";
    case SimMsgType::kBounce: return "BOUNCE";
  }
  return "UNKNOWN";
}

void write_label(WireWriter& w, const DlsLabel& label) {
  // Mirrors the per-label block of the snapshot labeling payload
  // (src/oracle/snapshot.cpp) so the estimate exchange is priced at the
  // same rate the label ships at on disk.
  w.u32(label.id);
  w.u64(label.host_dist.size());
  for (const Dist d : label.host_dist) w.f64(d);
  w.u64(label.zeta.size());
  for (const auto& level : label.zeta) {
    w.u64(level.size());
    for (const DlsTriple& t : level) {
      w.u32(t.x);
      w.u32(t.y);
      w.u32(t.z);
    }
  }
  w.u32(label.zoom0);
  w.u64(label.zoom.size());
  for (const std::uint32_t z : label.zoom) w.u32(z);
}

namespace {

/// Encodes the payload fields `effective` carries (the bounce echo reuses
/// this with the failed type).
void write_payload(WireWriter& w, const SimMessage& m, SimMsgType effective) {
  switch (effective) {
    case SimMsgType::kDirLookup:
      w.u64(m.locate_id);
      w.str(m.name);
      w.u32(m.obj);
      w.u32(m.probe);
      break;
    case SimMsgType::kDirReply:
      w.u64(m.locate_id);
      w.u32(m.obj);
      w.u64(m.holders.size());
      for (const NodeId h : m.holders) w.u32(h);
      break;
    case SimMsgType::kDirMiss:
      // The echo a stateless coordinator resumes from: which op missed,
      // where in the sequence, and the probe bookkeeping.
      w.u8(static_cast<std::uint8_t>(m.failed_type));
      w.u64(m.locate_id);
      w.str(m.name);
      w.u32(m.obj);
      w.u32(m.subject);
      w.u32(m.probe);
      w.u32(m.first_alive);
      break;
    case SimMsgType::kDirPublish:
      w.str(m.name);
      w.u32(m.obj);
      w.u32(m.subject);
      w.u32(m.probe);
      w.u32(m.first_alive);
      w.u8(m.create ? 1 : 0);
      break;
    case SimMsgType::kDirUnpublish:
      w.str(m.name);
      w.u32(m.obj);
      w.u32(m.subject);
      w.u32(m.probe);
      break;
    case SimMsgType::kDirAck:
      w.u32(m.obj);
      break;
    case SimMsgType::kDirHandoff:
      w.str(m.name);
      w.u32(m.obj);
      w.u32(m.probe);
      w.u64(m.holders.size());
      for (const NodeId h : m.holders) w.u32(h);
      break;
    case SimMsgType::kLocateStep:
      w.u64(m.locate_id);
      w.u32(m.obj);
      w.u32(m.origin);
      w.u32(m.subject);
      w.u32(m.hops);
      w.f64(m.path_length);
      break;
    case SimMsgType::kLocateFound:
      w.u64(m.locate_id);
      w.u32(m.obj);
      w.u32(m.subject);
      w.u32(m.hops);
      w.f64(m.path_length);
      break;
    case SimMsgType::kLocateNack:
      w.u64(m.locate_id);
      w.u32(m.obj);
      w.u8(m.reason);
      w.u32(m.hops);
      break;
    case SimMsgType::kJoinAnnounce:
    case SimMsgType::kJoinAck:
    case SimMsgType::kLeaveAnnounce:
    case SimMsgType::kEstimateReq:
      break;  // liveness/request headers carry no payload
    case SimMsgType::kEstimateReply:
      RON_CHECK(m.label != nullptr,
                "wire_bytes: ESTIMATE_REPLY without a label payload");
      write_label(w, *m.label);
      break;
    case SimMsgType::kBounce:
      // handled by the caller (needs the echoed type)
      break;
  }
}

}  // namespace

std::size_t wire_bytes(const SimMessage& m) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(m.type));
  w.u32(m.from);
  w.u32(m.to);
  if (m.type == SimMsgType::kBounce) {
    // ICMP-style: the notification carries the failed message's type and
    // payload so the sender can resume without per-chain state.
    w.u8(static_cast<std::uint8_t>(m.failed_type));
    write_payload(w, m, m.failed_type);
  } else {
    write_payload(w, m, m.type);
  }
  return w.size();
}

}  // namespace ron::sim
