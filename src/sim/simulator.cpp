#include "sim/simulator.h"

#include <algorithm>
#include <ostream>
#include <utility>

#include "common/check.h"
#include "location/location_service.h"
#include "smallworld/model.h"

namespace ron::sim {

const char* to_string(SimLocateOutcome o) {
  switch (o) {
    case SimLocateOutcome::kFound: return "FOUND";
    case SimLocateOutcome::kNoHolders: return "NO_HOLDERS";
    case SimLocateOutcome::kStuck: return "STUCK";
    case SimLocateOutcome::kStaleHolder: return "STALE_HOLDER";
    case SimLocateOutcome::kHopBudget: return "HOP_BUDGET";
    case SimLocateOutcome::kDirExhausted: return "DIR_EXHAUSTED";
    case SimLocateOutcome::kAbandoned: return "ABANDONED";
  }
  return "UNKNOWN";
}

namespace {

void sorted_insert(std::vector<NodeId>& v, NodeId x) {
  const auto pos = std::lower_bound(v.begin(), v.end(), x);
  if (pos == v.end() || *pos != x) v.insert(pos, x);
}

void sorted_erase(std::vector<NodeId>& v, NodeId x) {
  const auto pos = std::lower_bound(v.begin(), v.end(), x);
  if (pos != v.end() && *pos == x) v.erase(pos);
}

}  // namespace

Simulator::Simulator(SimNetwork net, const SimOptions& opts)
    : net_(std::move(net)), opts_(opts), rng_(opts.seed) {
  RON_CHECK(net_.prox != nullptr, "Simulator: network has no metric");
  RON_CHECK(!net_.nodes.empty(), "Simulator: empty network");
  RON_CHECK(opts_.max_dir_probes >= 1,
            "Simulator: max_dir_probes=" << opts_.max_dir_probes);
  RON_CHECK(opts_.max_attempts >= 1,
            "Simulator: max_attempts=" << opts_.max_attempts);
}

ObjectId Simulator::register_object(const std::string& name) {
  RON_CHECK(!name.empty(), "sim register_object: empty object name");
  for (ObjectId i = 0; i < net_.object_names.size(); ++i) {
    if (net_.object_names[i] == name) return i;
  }
  net_.object_names.push_back(name);
  return static_cast<ObjectId>(net_.object_names.size() - 1);
}

void Simulator::schedule_locate(std::uint64_t at_ns, NodeId origin,
                                ObjectId obj) {
  RON_CHECK(origin < n(), "schedule_locate: origin " << origin
                              << " out of range (n=" << n() << ")");
  RON_CHECK(obj < net_.object_names.size(),
            "schedule_locate: unknown object id " << obj);
  SimEvent ev;
  ev.at_ns = at_ns;
  ev.kind = SimEvent::Kind::kLocateIssue;
  ev.a = origin;
  ev.obj = obj;
  push_event(std::move(ev));
}

void Simulator::schedule_churn(std::uint64_t at_ns, const ChurnOp& op) {
  RON_CHECK(op.node < n(), "schedule_churn: node " << op.node
                               << " out of range (n=" << n() << ")");
  if (op.kind == ChurnOpKind::kPublish || op.kind == ChurnOpKind::kUnpublish) {
    RON_CHECK(op.object < net_.object_names.size(),
              "schedule_churn: unknown object id "
                  << op.object << " (register_object the trace names first)");
  }
  SimEvent ev;
  ev.at_ns = at_ns;
  ev.kind = SimEvent::Kind::kChurn;
  ev.op = op;
  push_event(std::move(ev));
}

void Simulator::schedule_estimate(std::uint64_t at_ns, NodeId a, NodeId b) {
  RON_CHECK(a < n() && b < n(),
            "schedule_estimate: endpoints " << a << "," << b
                                            << " out of range (n=" << n()
                                            << ")");
  RON_CHECK(net_.nodes[a].label != nullptr && net_.nodes[b].label != nullptr,
            "schedule_estimate: the scenario carved no distance labels");
  SimEvent ev;
  ev.at_ns = at_ns;
  ev.kind = SimEvent::Kind::kEstimateIssue;
  ev.a = a;
  ev.b = b;
  push_event(std::move(ev));
}

void Simulator::push_event(SimEvent ev) {
  RON_CHECK(ev.at_ns >= clock_.now_ns(),
            "sim event scheduled at " << ev.at_ns << "ns, virtual now is "
                                      << clock_.now_ns() << "ns");
  ev.seq = next_seq_++;
  queue_.push(std::move(ev));
}

std::uint64_t Simulator::link_latency_ns(NodeId u, NodeId v) {
  const LatencyParams& lp = opts_.latency;
  double frac = 0.0;
  const Dist dmax = net_.prox->dmax();
  if (u != v && dmax > 0.0) frac = net_.prox->dist(u, v) / dmax;
  std::uint64_t lat =
      lp.base_ns +
      static_cast<std::uint64_t>(static_cast<double>(lp.span_ns) * frac);
  if (lp.jitter_ns > 0) lat += rng_.uniform_u64(0, lp.jitter_ns);
  return lat;
}

void Simulator::post(SimMessage msg) {
  RON_CHECK(msg.from < n() && msg.to < n(),
            "sim post: endpoints " << msg.from << "->" << msg.to
                                   << " out of range (n=" << n() << ")");
  const std::uint64_t bytes = wire_bytes(msg);
  ++totals_.sent;
  totals_.bytes += bytes;
  registry_.counter("ron_sim_messages_total").add(0);
  registry_.counter("ron_sim_bytes_total").add(0, bytes);
  if (msg.locate_id != 0) {
    const auto it = pending_.find(msg.locate_id);
    if (it != pending_.end()) {
      ++it->second.messages;
      it->second.bytes += bytes;
    }
  }
  SimEvent ev;
  ev.at_ns = clock_.now_ns() + link_latency_ns(msg.from, msg.to);
  ev.kind = SimEvent::Kind::kDeliver;
  ev.msg = std::move(msg);
  push_event(std::move(ev));
}

NodeId Simulator::greedy_from(const SimNode& at, NodeId target) {
  const std::span<const NodeId> cs = at.contacts(scratch_);
  const NodeId next = greedy_next_hop(net_.prox->metric(), cs, at.id, target);
  return next == at.id ? kInvalidNode : next;
}

void Simulator::log_line(const char* verb, const SimMessage& m) {
  if (log_ == nullptr) return;
  *log_ << "t=" << clock_.now_ns() << ' ' << verb << ' '
        << to_string(m.type == SimMsgType::kBounce ? m.failed_type : m.type)
        << (m.type == SimMsgType::kBounce ? "!" : "") << ' ' << m.from << "->"
        << m.to << " loc=" << m.locate_id << " obj=" << m.obj
        << " hops=" << m.hops << '\n';
}

void Simulator::run() {
  while (!queue_.empty()) {
    SimEvent ev = queue_.top();
    queue_.pop();
    clock_.advance_to(ev.at_ns);
    switch (ev.kind) {
      case SimEvent::Kind::kDeliver:
        handle_deliver(ev.msg);
        break;
      case SimEvent::Kind::kChurn:
        switch (ev.op.kind) {
          case ChurnOpKind::kJoin: do_join(ev.op.node); break;
          case ChurnOpKind::kLeave: do_leave(ev.op.node); break;
          case ChurnOpKind::kPublish: do_publish(ev.op.node, ev.op.object); break;
          case ChurnOpKind::kUnpublish:
            do_unpublish(ev.op.node, ev.op.object);
            break;
        }
        break;
      case SimEvent::Kind::kLocateIssue:
        issue_locate(ev.a, ev.obj);
        break;
      case SimEvent::Kind::kLocateRetry: {
        const auto it = pending_.find(ev.locate_id);
        if (it == pending_.end()) break;
        if (!net_.nodes[it->second.origin].active) {
          abandon_locate(ev.locate_id);
          break;
        }
        start_attempt(ev.locate_id);
        break;
      }
      case SimEvent::Kind::kEstimateIssue: {
        if (!net_.nodes[ev.a].active || !net_.nodes[ev.b].active) {
          ++totals_.estimates_failed;
          registry_.counter("ron_sim_estimates_failed_total").add(0);
          break;
        }
        SimMessage m;
        m.type = SimMsgType::kEstimateReq;
        m.from = ev.a;
        m.to = ev.b;
        post(std::move(m));
        break;
      }
    }
  }
  RON_CHECK(pending_.empty(),
            "sim run: queue drained with " << pending_.size()
                                           << " locates still pending");

  // End-state accounting: liveness gauges and the per-node state-bytes
  // distribution over the nodes still in the overlay.
  std::size_t active = 0;
  std::uint64_t max_state = 0;
  Histogram& state_hist = registry_.histogram("ron_sim_node_state_bytes");
  for (const SimNode& node : net_.nodes) {
    if (!node.active) continue;
    ++active;
    const std::uint64_t b = node.state_bytes();
    state_hist.record(0, static_cast<double>(b));
    max_state = std::max(max_state, b);
  }
  registry_.gauge("ron_sim_nodes").set(static_cast<double>(n()));
  registry_.gauge("ron_sim_active_nodes").set(static_cast<double>(active));
  registry_.gauge("ron_sim_hop_bound")
      .set(static_cast<double>(net_.hop_bound));
  registry_.gauge("ron_sim_state_bytes_max")
      .set(static_cast<double>(max_state));
  registry_.gauge("ron_sim_virtual_seconds")
      .set(static_cast<double>(clock_.now_ns()) / 1e9);
  registry_.gauge("ron_sim_messages_lost")
      .set(static_cast<double>(totals_.sent - totals_.delivered -
                               totals_.bounced));
}

void Simulator::handle_deliver(const SimMessage& m) {
  SimNode& dst = net_.nodes[m.to];
  // Graceful-leave linger: a node that left keeps consuming the replies of
  // maintenance chains it originated (handoff/unpublish probing), and
  // bounce notifications always reach their sender. Everything else
  // addressed to an inactive node bounces.
  const bool linger =
      m.type == SimMsgType::kBounce ||
      (m.locate_id == 0 && (m.type == SimMsgType::kDirMiss ||
                            m.type == SimMsgType::kDirAck));
  if (!dst.active && !linger) {
    ++totals_.bounced;
    registry_.counter("ron_sim_messages_bounced_total").add(0);
    log_line("bounce", m);
    SimMessage b = m;  // echo every payload field back to the sender
    b.type = SimMsgType::kBounce;
    b.failed_type = m.type;
    b.from = m.to;
    b.to = m.from;
    post(std::move(b));
    return;
  }
  ++totals_.delivered;
  registry_.counter("ron_sim_messages_delivered_total").add(0);
  log_line("deliver", m);
  switch (m.type) {
    case SimMsgType::kDirLookup: handle_dir_lookup(m); break;
    case SimMsgType::kDirReply: handle_dir_reply(m); break;
    case SimMsgType::kDirMiss: handle_dir_miss(m); break;
    case SimMsgType::kDirPublish: handle_dir_publish(m); break;
    case SimMsgType::kDirUnpublish: handle_dir_unpublish(m); break;
    case SimMsgType::kDirAck: break;  // chain closed; nothing to resume
    case SimMsgType::kDirHandoff: handle_dir_handoff(m); break;
    case SimMsgType::kLocateStep: handle_locate_step(m); break;
    case SimMsgType::kLocateFound: handle_locate_found(m); break;
    case SimMsgType::kLocateNack: handle_locate_nack(m); break;
    case SimMsgType::kJoinAnnounce: {
      net_.nodes[m.to].revive(m.from);
      SimMessage r;
      r.type = SimMsgType::kJoinAck;
      r.from = m.to;
      r.to = m.from;
      post(std::move(r));
      break;
    }
    case SimMsgType::kJoinAck:
      net_.nodes[m.to].revive(m.from);
      break;
    case SimMsgType::kLeaveAnnounce:
      net_.nodes[m.to].tombstone(m.from);
      break;
    case SimMsgType::kEstimateReq: handle_estimate_req(m); break;
    case SimMsgType::kEstimateReply: handle_estimate_reply(m); break;
    case SimMsgType::kBounce: handle_bounce_notice(m); break;
  }
}

void Simulator::handle_dir_lookup(const SimMessage& m) {
  SimNode& h = net_.nodes[m.to];
  if (SimNode::HostedEntry* e = h.hosted_find(m.obj)) {
    SimMessage r;
    r.type = SimMsgType::kDirReply;
    r.from = m.to;
    r.to = m.from;
    r.locate_id = m.locate_id;
    r.obj = m.obj;
    r.holders = e->holders;
    post(std::move(r));
    return;
  }
  SimMessage r;
  r.type = SimMsgType::kDirMiss;
  r.failed_type = SimMsgType::kDirLookup;
  r.from = m.to;
  r.to = m.from;
  r.locate_id = m.locate_id;
  r.name = m.name;
  r.obj = m.obj;
  r.subject = m.subject;
  r.probe = m.probe;
  r.first_alive = m.first_alive;
  post(std::move(r));
}

void Simulator::handle_dir_reply(const SimMessage& m) {
  const auto it = pending_.find(m.locate_id);
  if (it == pending_.end()) return;  // stale reply of an abandoned locate
  PendingLocate& p = it->second;
  registry_.histogram("ron_sim_dir_probe_depth")
      .record(0, static_cast<double>(p.probe));
  if (m.holders.empty()) {
    finish_failed(m.locate_id, SimLocateOutcome::kNoHolders, 0);
    return;
  }
  p.target = net_.prox->nearest_in(p.origin, m.holders);
  p.nearest_dist = net_.prox->dist(p.origin, p.target);
  p.trace = LocateTrace{};
  p.trace.querier = p.origin;
  p.trace.object = p.obj;
  p.trace.target = p.target;
  p.trace.nearest_dist = p.nearest_dist;
  walk_or_finish(m.locate_id, p);
}

void Simulator::walk_or_finish(std::uint64_t locate_id, PendingLocate& p) {
  if (p.target == p.origin) {
    // The querier is itself in the directory's holder set: a zero-hop hit,
    // exactly like the in-process walk's target == querier case.
    complete_found(locate_id, p.origin, 0, 0.0);
    return;
  }
  const NodeId next = greedy_from(net_.nodes[p.origin], p.target);
  if (next == kInvalidNode) {
    maybe_retry(locate_id, SimLocateOutcome::kStuck, 0);
    return;
  }
  SimMessage s;
  s.type = SimMsgType::kLocateStep;
  s.from = p.origin;
  s.to = next;
  s.locate_id = locate_id;
  s.obj = p.obj;
  s.origin = p.origin;
  s.subject = p.target;
  s.hops = 1;
  s.path_length = net_.prox->dist(p.origin, next);
  post(std::move(s));
}

void Simulator::send_nack(NodeId from, const SimMessage& m,
                          SimNackReason why) {
  SimMessage r;
  r.type = SimMsgType::kLocateNack;
  r.from = from;
  r.to = m.origin;
  r.locate_id = m.locate_id;
  r.obj = m.obj;
  r.reason = static_cast<std::uint8_t>(why);
  r.hops = m.hops;
  post(std::move(r));
}

void Simulator::handle_locate_step(const SimMessage& m) {
  SimNode& v = net_.nodes[m.to];
  const auto it = pending_.find(m.locate_id);
  if (it != pending_.end()) {
    // Observer-side trace: the simulator (not the protocol) records the
    // hop, priced at zero bytes — it is instrumentation, not payload.
    it->second.trace.hops.push_back(
        TraceHop{v.id, ring_level_of(net_.nodes[m.from].rings, v.id),
                 net_.prox->dist(v.id, m.subject)});
  }
  if (v.id == m.subject) {
    if (v.holds(m.obj)) {
      SimMessage f;
      f.type = SimMsgType::kLocateFound;
      f.from = v.id;
      f.to = m.origin;
      f.locate_id = m.locate_id;
      f.obj = m.obj;
      f.subject = v.id;
      f.hops = m.hops;
      f.path_length = m.path_length;
      post(std::move(f));
    } else {
      // Bounded staleness: the directory steered us to a holder whose copy
      // is already gone (its unpublish chain is still in flight).
      registry_.counter("ron_sim_stale_holder_nacks_total").add(0);
      send_nack(v.id, m, SimNackReason::kStaleHolder);
    }
    return;
  }
  if (m.hops >= opts_.max_hops) {
    send_nack(v.id, m, SimNackReason::kHopBudget);
    return;
  }
  const NodeId next = greedy_from(v, m.subject);
  if (next == kInvalidNode) {
    send_nack(v.id, m, SimNackReason::kStuck);
    return;
  }
  SimMessage s = m;
  s.from = v.id;
  s.to = next;
  s.hops = m.hops + 1;
  s.path_length = m.path_length + net_.prox->dist(v.id, next);
  post(std::move(s));
}

void Simulator::handle_locate_found(const SimMessage& m) {
  complete_found(m.locate_id, m.subject, m.hops, m.path_length);
}

void Simulator::handle_locate_nack(const SimMessage& m) {
  SimLocateOutcome would_be = SimLocateOutcome::kStuck;
  switch (static_cast<SimNackReason>(m.reason)) {
    case SimNackReason::kStuck: would_be = SimLocateOutcome::kStuck; break;
    case SimNackReason::kStaleHolder:
      would_be = SimLocateOutcome::kStaleHolder;
      break;
    case SimNackReason::kHopBudget:
      would_be = SimLocateOutcome::kHopBudget;
      break;
  }
  maybe_retry(m.locate_id, would_be, m.hops);
}

void Simulator::handle_dir_miss(const SimMessage& m) {
  if (m.locate_id != 0) {
    const auto it = pending_.find(m.locate_id);
    if (it == pending_.end()) return;
    PendingLocate& p = it->second;
    ++p.probe;
    if (p.probe >= opts_.max_dir_probes) {
      finish_failed(m.locate_id, SimLocateOutcome::kDirExhausted, 0);
      return;
    }
    SimMessage l;
    l.type = SimMsgType::kDirLookup;
    l.from = p.origin;
    l.to = home_of(m.name, p.probe, n());
    l.locate_id = m.locate_id;
    l.name = m.name;
    l.obj = m.obj;
    l.probe = p.probe;
    post(std::move(l));
    return;
  }
  continue_dir_chain(m, /*alive_miss=*/true);
}

void Simulator::continue_dir_chain(const SimMessage& echo, bool alive_miss) {
  const SimMsgType kind = echo.failed_type;
  std::uint32_t fa = echo.first_alive;
  if (alive_miss && kind == SimMsgType::kDirPublish) {
    fa = std::min(fa, echo.probe);
  }
  if (echo.create) {
    // The create-phase candidate died between its miss and the create —
    // give up on this chain; the copy stays unregistered (counted).
    ++totals_.chain_drops;
    registry_.counter("ron_sim_dir_chain_drops_total").add(0);
    return;
  }
  std::uint32_t next_probe = echo.probe + 1;
  // A leaver handing off an entry must skip its own slot in the sequence.
  if (kind == SimMsgType::kDirHandoff) {
    while (next_probe < opts_.max_dir_probes &&
           home_of(echo.name, next_probe, n()) == echo.to) {
      ++next_probe;
    }
  }
  if (next_probe >= opts_.max_dir_probes) {
    if (kind == SimMsgType::kDirPublish && fa != kNoAliveCandidate) {
      // Every candidate missed or bounced; the entry exists nowhere.
      // Create it at the first candidate that answered alive.
      SimMessage c;
      c.type = SimMsgType::kDirPublish;
      c.from = echo.to;
      c.to = home_of(echo.name, fa, n());
      c.name = echo.name;
      c.obj = echo.obj;
      c.subject = echo.subject;
      c.probe = fa;
      c.first_alive = fa;
      c.create = true;
      post(std::move(c));
      return;
    }
    ++totals_.chain_drops;
    registry_.counter("ron_sim_dir_chain_drops_total").add(0);
    return;
  }
  SimMessage m;
  m.type = kind;
  m.from = echo.to;
  m.to = home_of(echo.name, next_probe, n());
  m.name = echo.name;
  m.obj = echo.obj;
  m.subject = echo.subject;
  m.probe = next_probe;
  m.first_alive = fa;
  m.holders = echo.holders;  // handoff payload rides along
  post(std::move(m));
}

void Simulator::handle_dir_publish(const SimMessage& m) {
  SimNode& c = net_.nodes[m.to];
  if (SimNode::HostedEntry* e = c.hosted_find(m.obj)) {
    sorted_insert(e->holders, m.subject);
  } else if (m.create) {
    c.hosted[m.obj] = SimNode::HostedEntry{m.name, {m.subject}, m.probe};
  } else {
    SimMessage r;
    r.type = SimMsgType::kDirMiss;
    r.failed_type = SimMsgType::kDirPublish;
    r.from = m.to;
    r.to = m.from;
    r.name = m.name;
    r.obj = m.obj;
    r.subject = m.subject;
    r.probe = m.probe;
    r.first_alive = m.first_alive;
    post(std::move(r));
    return;
  }
  SimMessage a;
  a.type = SimMsgType::kDirAck;
  a.from = m.to;
  a.to = m.from;
  a.obj = m.obj;
  post(std::move(a));
}

void Simulator::handle_dir_unpublish(const SimMessage& m) {
  SimNode& c = net_.nodes[m.to];
  if (SimNode::HostedEntry* e = c.hosted_find(m.obj)) {
    sorted_erase(e->holders, m.subject);
    SimMessage a;
    a.type = SimMsgType::kDirAck;
    a.from = m.to;
    a.to = m.from;
    a.obj = m.obj;
    post(std::move(a));
    return;
  }
  SimMessage r;
  r.type = SimMsgType::kDirMiss;
  r.failed_type = SimMsgType::kDirUnpublish;
  r.from = m.to;
  r.to = m.from;
  r.name = m.name;
  r.obj = m.obj;
  r.subject = m.subject;
  r.probe = m.probe;
  r.first_alive = m.first_alive;
  post(std::move(r));
}

void Simulator::handle_dir_handoff(const SimMessage& m) {
  SimNode& c = net_.nodes[m.to];
  if (SimNode::HostedEntry* e = c.hosted_find(m.obj)) {
    // Duplicate home (e.g. a create raced the handoff): merge holder sets.
    for (const NodeId h : m.holders) sorted_insert(e->holders, h);
  } else {
    c.hosted[m.obj] = SimNode::HostedEntry{m.name, m.holders, m.probe};
  }
  SimMessage a;
  a.type = SimMsgType::kDirAck;
  a.from = m.to;
  a.to = m.from;
  a.obj = m.obj;
  post(std::move(a));
}

void Simulator::handle_estimate_req(const SimMessage& m) {
  SimNode& v = net_.nodes[m.to];
  RON_CHECK(v.label != nullptr,
            "sim estimate: node " << v.id << " has no label");
  SimMessage r;
  r.type = SimMsgType::kEstimateReply;
  r.from = m.to;
  r.to = m.from;
  r.label = v.label;
  post(std::move(r));
}

void Simulator::handle_estimate_reply(const SimMessage& m) {
  SimNode& u = net_.nodes[m.to];
  RON_CHECK(u.label != nullptr && m.label != nullptr,
            "sim estimate reply without labels at node " << u.id);
  const DlsEstimate est = DistanceLabeling::estimate(*u.label, *m.label);
  const Dist d = net_.prox->dist(u.id, m.from);
  const double ratio = d > 0.0 ? est.upper / d : 1.0;
  registry_.histogram("ron_sim_estimate_stretch").record(0, ratio);
  ++totals_.estimates_done;
  registry_.counter("ron_sim_estimates_total").add(0);
}

void Simulator::handle_bounce_notice(const SimMessage& m) {
  switch (m.failed_type) {
    case SimMsgType::kLocateStep: {
      // The forwarder learns its contact is gone: tombstone it and reroute
      // from the same walk position (undoing the failed hop's accounting).
      SimNode& s = net_.nodes[m.to];
      s.tombstone(m.from);
      ++totals_.reroutes;
      registry_.counter("ron_sim_locate_reroutes_total").add(0);
      const double prev_path =
          m.path_length - net_.prox->dist(m.to, m.from);
      const std::uint32_t prev_hops = m.hops - 1;
      const NodeId next = greedy_from(s, m.subject);
      if (next == kInvalidNode) {
        if (m.to == m.origin) {
          maybe_retry(m.locate_id, SimLocateOutcome::kStuck, prev_hops);
        } else {
          SimMessage r;
          r.type = SimMsgType::kLocateNack;
          r.from = m.to;
          r.to = m.origin;
          r.locate_id = m.locate_id;
          r.obj = m.obj;
          r.reason = static_cast<std::uint8_t>(SimNackReason::kStuck);
          r.hops = prev_hops;
          post(std::move(r));
        }
        return;
      }
      SimMessage s2;
      s2.type = SimMsgType::kLocateStep;
      s2.from = m.to;
      s2.to = next;
      s2.locate_id = m.locate_id;
      s2.obj = m.obj;
      s2.origin = m.origin;
      s2.subject = m.subject;
      s2.hops = prev_hops + 1;
      s2.path_length = prev_path + net_.prox->dist(m.to, next);
      post(std::move(s2));
      return;
    }
    case SimMsgType::kDirLookup: {
      if (m.locate_id == 0) return;
      const auto it = pending_.find(m.locate_id);
      if (it == pending_.end()) return;
      PendingLocate& p = it->second;
      ++p.probe;
      if (p.probe >= opts_.max_dir_probes) {
        finish_failed(m.locate_id, SimLocateOutcome::kDirExhausted, 0);
        return;
      }
      SimMessage l;
      l.type = SimMsgType::kDirLookup;
      l.from = p.origin;
      l.to = home_of(m.name, p.probe, n());
      l.locate_id = m.locate_id;
      l.name = m.name;
      l.obj = m.obj;
      l.probe = p.probe;
      post(std::move(l));
      return;
    }
    case SimMsgType::kDirPublish:
    case SimMsgType::kDirUnpublish:
    case SimMsgType::kDirHandoff:
      continue_dir_chain(m, /*alive_miss=*/false);
      return;
    case SimMsgType::kDirReply:
    case SimMsgType::kDirMiss:
    case SimMsgType::kLocateFound:
    case SimMsgType::kLocateNack:
      // A reply could not reach the querier: it left mid-locate.
      if (m.locate_id != 0) abandon_locate(m.locate_id);
      return;
    case SimMsgType::kJoinAnnounce:
    case SimMsgType::kLeaveAnnounce:
      // The probed/announced-to neighbor is itself gone.
      net_.nodes[m.to].tombstone(m.from);
      return;
    case SimMsgType::kEstimateReq:
      ++totals_.estimates_failed;
      registry_.counter("ron_sim_estimates_failed_total").add(0);
      return;
    case SimMsgType::kJoinAck:
    case SimMsgType::kDirAck:
    case SimMsgType::kEstimateReply:
    case SimMsgType::kBounce:
      return;  // nothing to resume
  }
}

void Simulator::do_join(NodeId u) {
  SimNode& node = net_.nodes[u];
  RON_CHECK(!node.active, "sim join: node " << u << " is already active");
  node.active = true;
  ++totals_.joins;
  registry_.counter("ron_sim_joins_total").add(0);
  if (log_ != nullptr) {
    *log_ << "t=" << clock_.now_ns() << " churn join node=" << u << '\n';
  }
  // Rejoin with the cached rings; re-probe every remembered neighbor. Alive
  // ones ack (and un-tombstone us), dead ones bounce into fresh tombstones.
  for (const NodeId w : node.neighbors) {
    if (w == u) continue;
    SimMessage m;
    m.type = SimMsgType::kJoinAnnounce;
    m.from = u;
    m.to = w;
    post(std::move(m));
  }
}

void Simulator::do_leave(NodeId u) {
  SimNode& node = net_.nodes[u];
  RON_CHECK(node.active, "sim leave: node " << u << " is already inactive");
  ++totals_.leaves;
  registry_.counter("ron_sim_leaves_total").add(0);
  if (log_ != nullptr) {
    *log_ << "t=" << clock_.now_ns() << " churn leave node=" << u << '\n';
  }
  for (const NodeId w : node.neighbors) {
    if (w == u || node.believes_dead(w)) continue;
    SimMessage m;
    m.type = SimMsgType::kLeaveAnnounce;
    m.from = u;
    m.to = w;
    post(std::move(m));
  }
  // Hand every hosted entry to the next candidate in its home sequence.
  for (const auto& [obj, e] : node.hosted) {
    std::uint32_t probe = e.home_rank + 1;
    while (probe < opts_.max_dir_probes && home_of(e.name, probe, n()) == u) {
      ++probe;
    }
    if (probe >= opts_.max_dir_probes) {
      ++totals_.chain_drops;
      registry_.counter("ron_sim_dir_chain_drops_total").add(0);
      continue;
    }
    SimMessage m;
    m.type = SimMsgType::kDirHandoff;
    m.from = u;
    m.to = home_of(e.name, probe, n());
    m.name = e.name;
    m.obj = obj;
    m.probe = probe;
    m.holders = e.holders;
    post(std::move(m));
  }
  node.hosted.clear();
  // Unpublish the copies this node held (probing from candidate 0; the
  // linger rule lets the chain run to completion after we deactivate).
  for (const ObjectId obj : node.held) {
    SimMessage m;
    m.type = SimMsgType::kDirUnpublish;
    m.from = u;
    m.to = home_of(net_.object_names[obj], 0, n());
    m.name = net_.object_names[obj];
    m.obj = obj;
    m.subject = u;
    m.probe = 0;
    post(std::move(m));
  }
  node.held.clear();
  node.active = false;
}

void Simulator::do_publish(NodeId v, ObjectId obj) {
  SimNode& node = net_.nodes[v];
  RON_CHECK(node.active, "sim publish: node " << v << " is inactive");
  RON_CHECK(!node.holds(obj), "sim publish: node "
                                  << v << " already holds object " << obj);
  node.add_copy(obj);
  ++totals_.publishes;
  registry_.counter("ron_sim_publishes_total").add(0);
  if (log_ != nullptr) {
    *log_ << "t=" << clock_.now_ns() << " churn publish node=" << v
          << " obj=" << obj << '\n';
  }
  SimMessage m;
  m.type = SimMsgType::kDirPublish;
  m.from = v;
  m.to = home_of(net_.object_names[obj], 0, n());
  m.name = net_.object_names[obj];
  m.obj = obj;
  m.subject = v;
  m.probe = 0;
  post(std::move(m));
}

void Simulator::do_unpublish(NodeId v, ObjectId obj) {
  SimNode& node = net_.nodes[v];
  RON_CHECK(node.active, "sim unpublish: node " << v << " is inactive");
  RON_CHECK(node.holds(obj), "sim unpublish: node "
                                 << v << " does not hold object " << obj);
  node.drop_copy(obj);
  ++totals_.unpublishes;
  registry_.counter("ron_sim_unpublishes_total").add(0);
  if (log_ != nullptr) {
    *log_ << "t=" << clock_.now_ns() << " churn unpublish node=" << v
          << " obj=" << obj << '\n';
  }
  SimMessage m;
  m.type = SimMsgType::kDirUnpublish;
  m.from = v;
  m.to = home_of(net_.object_names[obj], 0, n());
  m.name = net_.object_names[obj];
  m.obj = obj;
  m.subject = v;
  m.probe = 0;
  post(std::move(m));
}

void Simulator::issue_locate(NodeId origin, ObjectId obj) {
  if (!net_.nodes[origin].active) {
    ++totals_.locates_skipped;
    registry_.counter("ron_sim_locates_skipped_total").add(0);
    return;
  }
  const std::uint64_t id = next_locate_id_++;
  PendingLocate p;
  p.origin = origin;
  p.obj = obj;
  p.issued_ns = clock_.now_ns();
  pending_[id] = std::move(p);
  ++totals_.locates_issued;
  registry_.counter("ron_sim_locates_total").add(0);
  start_attempt(id);
}

void Simulator::start_attempt(std::uint64_t locate_id) {
  PendingLocate& p = pending_.at(locate_id);
  p.probe = 0;
  const std::string& name = net_.object_names[p.obj];
  SimMessage m;
  m.type = SimMsgType::kDirLookup;
  m.from = p.origin;
  m.to = home_of(name, 0, n());
  m.locate_id = locate_id;
  m.name = name;
  m.obj = p.obj;
  m.probe = 0;
  post(std::move(m));
}

void Simulator::maybe_retry(std::uint64_t locate_id,
                            SimLocateOutcome would_be, std::uint32_t hops) {
  const auto it = pending_.find(locate_id);
  if (it == pending_.end()) return;
  PendingLocate& p = it->second;
  if (p.attempt >= opts_.max_attempts) {
    finish_failed(locate_id, would_be, hops);
    return;
  }
  ++p.attempt;
  ++totals_.retries;
  registry_.counter("ron_sim_locate_retries_total").add(0);
  SimEvent ev;
  ev.at_ns = clock_.now_ns() + opts_.retry_delay_ns;
  ev.kind = SimEvent::Kind::kLocateRetry;
  ev.locate_id = locate_id;
  push_event(std::move(ev));
}

void Simulator::complete_found(std::uint64_t locate_id, NodeId holder,
                               std::uint32_t hops, double path_length) {
  const auto it = pending_.find(locate_id);
  if (it == pending_.end()) return;
  PendingLocate& p = it->second;
  SimLocateResult r;
  r.locate_id = locate_id;
  r.origin = p.origin;
  r.obj = p.obj;
  r.outcome = SimLocateOutcome::kFound;
  r.found = true;
  r.holder = holder;
  r.hops = hops;
  r.attempts = p.attempt;
  r.nearest_dist = p.nearest_dist;
  r.path_length = path_length;
  r.route_stretch =
      p.nearest_dist > 0.0 ? path_length / p.nearest_dist : 1.0;
  r.messages = p.messages;
  r.bytes = p.bytes;
  r.issued_ns = p.issued_ns;
  r.completed_ns = clock_.now_ns();
  p.trace.found = true;
  r.trace = std::move(p.trace);

  ++totals_.locates_found;
  registry_.counter("ron_sim_locates_found_total").add(0);
  registry_.histogram("ron_sim_locate_hops")
      .record(0, static_cast<double>(hops));
  registry_.histogram("ron_sim_locate_stretch").record(0, r.route_stretch);
  registry_.histogram("ron_sim_locate_messages")
      .record(0, static_cast<double>(r.messages));
  registry_.histogram("ron_sim_locate_bytes")
      .record(0, static_cast<double>(r.bytes));
  registry_.histogram("ron_sim_locate_virtual_seconds")
      .record(0, static_cast<double>(r.completed_ns - r.issued_ns) / 1e9);
  if (hops > net_.hop_bound) {
    registry_.counter("ron_sim_hop_bound_violations_total").add(0);
  }
  if (hops > 0 && r.route_stretch >= location_stretch_bound(hops)) {
    registry_.counter("ron_sim_stretch_violations_total").add(0);
  }
  if (traces_ != nullptr && traces_->should_sample()) {
    traces_->record(r.trace);
  }
  if (log_ != nullptr) {
    *log_ << "t=" << clock_.now_ns() << " locate id=" << locate_id
          << " outcome=FOUND holder=" << holder << " hops=" << hops
          << " attempts=" << r.attempts << '\n';
  }
  results_.push_back(std::move(r));
  pending_.erase(it);
}

void Simulator::finish_failed(std::uint64_t locate_id,
                              SimLocateOutcome outcome, std::uint32_t hops) {
  const auto it = pending_.find(locate_id);
  if (it == pending_.end()) return;
  PendingLocate& p = it->second;
  SimLocateResult r;
  r.locate_id = locate_id;
  r.origin = p.origin;
  r.obj = p.obj;
  r.outcome = outcome;
  r.found = false;
  r.hops = hops;
  r.attempts = p.attempt;
  r.nearest_dist = p.nearest_dist;
  r.messages = p.messages;
  r.bytes = p.bytes;
  r.issued_ns = p.issued_ns;
  r.completed_ns = clock_.now_ns();
  r.trace = std::move(p.trace);
  if (outcome == SimLocateOutcome::kAbandoned) {
    ++totals_.locates_abandoned;
    registry_.counter("ron_sim_locates_abandoned_total").add(0);
  } else {
    ++totals_.locates_failed;
    registry_.counter("ron_sim_locates_failed_total").add(0);
  }
  if (log_ != nullptr) {
    *log_ << "t=" << clock_.now_ns() << " locate id=" << locate_id
          << " outcome=" << to_string(outcome) << " hops=" << hops
          << " attempts=" << r.attempts << '\n';
  }
  results_.push_back(std::move(r));
  pending_.erase(it);
}

void Simulator::abandon_locate(std::uint64_t locate_id) {
  finish_failed(locate_id, SimLocateOutcome::kAbandoned, 0);
}

}  // namespace ron::sim
