#include "sim/sim_node.h"

#include <algorithm>

#include "oracle/wire.h"
#include "sim/messages.h"

namespace ron::sim {

namespace {

bool sorted_contains(const std::vector<NodeId>& v, NodeId x) {
  return std::binary_search(v.begin(), v.end(), x);
}

void sorted_insert(std::vector<NodeId>& v, NodeId x) {
  const auto pos = std::lower_bound(v.begin(), v.end(), x);
  if (pos == v.end() || *pos != x) v.insert(pos, x);
}

void sorted_erase(std::vector<NodeId>& v, NodeId x) {
  const auto pos = std::lower_bound(v.begin(), v.end(), x);
  if (pos != v.end() && *pos == x) v.erase(pos);
}

}  // namespace

bool SimNode::believes_dead(NodeId w) const {
  return sorted_contains(tombstones, w);
}

void SimNode::tombstone(NodeId w) { sorted_insert(tombstones, w); }

void SimNode::revive(NodeId w) { sorted_erase(tombstones, w); }

std::span<const NodeId> SimNode::contacts(std::vector<NodeId>& scratch) const {
  if (tombstones.empty()) return neighbors;
  scratch.clear();
  scratch.reserve(neighbors.size());
  std::set_difference(neighbors.begin(), neighbors.end(), tombstones.begin(),
                      tombstones.end(), std::back_inserter(scratch));
  return scratch;
}

bool SimNode::holds(ObjectId obj) const {
  return std::binary_search(held.begin(), held.end(), obj);
}

void SimNode::add_copy(ObjectId obj) {
  const auto pos = std::lower_bound(held.begin(), held.end(), obj);
  if (pos == held.end() || *pos != obj) held.insert(pos, obj);
}

void SimNode::drop_copy(ObjectId obj) {
  const auto pos = std::lower_bound(held.begin(), held.end(), obj);
  if (pos != held.end() && *pos == obj) held.erase(pos);
}

SimNode::HostedEntry* SimNode::hosted_find(ObjectId obj) {
  const auto it = hosted.find(obj);
  return it == hosted.end() ? nullptr : &it->second;
}

std::uint64_t SimNode::state_bytes() const {
  WireWriter w;
  w.u32(id);
  w.u8(active ? 1 : 0);
  w.u64(rings.size());
  for (const Ring& r : rings) {
    w.f64(r.scale);
    w.u64(r.members.size());
    for (const NodeId v : r.members) w.u32(v);
  }
  w.u64(tombstones.size());
  for (const NodeId v : tombstones) w.u32(v);
  w.u64(held.size());
  for (const ObjectId obj : held) w.u32(obj);
  w.u64(hosted.size());
  for (const auto& [obj, e] : hosted) {
    w.u32(obj);
    w.str(e.name);
    w.u32(e.home_rank);
    w.u64(e.holders.size());
    for (const NodeId v : e.holders) w.u32(v);
  }
  w.u8(label != nullptr ? 1 : 0);
  if (label != nullptr) write_label(w, *label);
  return w.size();
}

}  // namespace ron::sim
