// Virtual time for the protocol-view simulator.
//
// The simulator never consults a real clock (tools/ron_lint.py enforces it:
// src/sim/ is banned from <chrono>, telemetry/clock.h and wall-clock calls).
// SimClock is the one timing source: a monotone nanosecond counter advanced
// by the event loop to each event's timestamp. Everything downstream —
// latency histograms, completion times, the event log — is therefore a pure
// function of (scenario, seed), which is what makes two runs bit-identical.
//
// LatencyParams maps metric distance to link latency: a fixed per-message
// base, a propagation term proportional to d(u,v)/dmax (the scenario metric
// is the geography), and a seeded jitter term so message orderings are
// adversarial-ish rather than synchronized, yet reproducible.
#pragma once

#include <cstdint>

#include "common/check.h"

namespace ron::sim {

class SimClock {
 public:
  std::uint64_t now_ns() const { return now_ns_; }

  /// Advances to an event's timestamp. Virtual time never flows backwards:
  /// the event queue pops in (at_ns, seq) order and every message is posted
  /// with a non-negative latency.
  void advance_to(std::uint64_t at_ns) {
    RON_CHECK(at_ns >= now_ns_, "SimClock: event at " << at_ns
                                    << "ns behind virtual now " << now_ns_
                                    << "ns");
    now_ns_ = at_ns;
  }

 private:
  std::uint64_t now_ns_ = 0;
};

struct LatencyParams {
  /// Fixed per-message cost (serialization, handoff to the wire).
  std::uint64_t base_ns = 1000;
  /// Propagation cost at the metric's diameter; a link of distance d costs
  /// span_ns * d / dmax of this.
  std::uint64_t span_ns = 4000;
  /// Uniform seeded jitter in [0, jitter_ns], drawn per message at post
  /// time from the simulator's forked Rng.
  std::uint64_t jitter_ns = 1000;
};

}  // namespace ron::sim
